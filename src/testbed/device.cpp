#include "testbed/device.hpp"

#include <algorithm>

#include "proto/coap.hpp"
#include "proto/dhcpv6.hpp"
#include "proto/dns.hpp"
#include "proto/http.hpp"
#include "proto/matter.hpp"
#include "proto/media.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"

namespace roomnet {

namespace {
std::string sanitized(std::string s) {
  for (auto& c : s)
    if (c == ' ') c = '-';
  return s;
}

/// Random token over a hex-free alphabet: randomized hostnames must not
/// pattern-match as MAC material to payload analysts (or to our own
/// extractor) — the whole point of the GE/TiVo obfuscation.
std::string random_token(Rng& rng, std::size_t length) {
  static constexpr char kAlphabet[] = "ghjkmnpqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(kAlphabet[rng.below(sizeof kAlphabet - 1)]);
  return out;
}

void replace_all(std::string& text, std::string_view needle,
                 const std::string& value) {
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    text.replace(pos, needle.size(), value);
    pos += value.size();
  }
}
}  // namespace

TestbedDevice::TestbedDevice(Switch& net, DeviceSpec spec,
                             DeviceBehavior behavior, MacAddress mac,
                             Rng& parent_rng)
    : spec_(std::move(spec)),
      behavior_(std::move(behavior)),
      rng_(parent_rng.fork(spec_.vendor + spec_.model + mac.to_string())),
      uuid_(Uuid::from_mac(rng_, mac)),
      host_(net, mac, sanitized(spec_.vendor + "-" + spec_.model)) {
  host_.enable_ipv6(behavior_.ipv6);
  host_.responds_to_broadcast_arp = behavior_.responds_to_broadcast_arp;
  // Stealth correlates: devices ignoring broadcast ARP also drop SYNs to
  // closed ports (yielding §4.2's 54-of-93 TCP scan responders).
  host_.rst_on_closed_tcp = behavior_.responds_to_broadcast_arp;
}

std::string TestbedDevice::expand(const std::string& pattern) const {
  std::string out = pattern;
  const std::string mac = host_.mac().to_string();
  const std::string mac_plain = host_.mac().to_string_plain();
  replace_all(out, "{MAC}", mac);
  replace_all(out, "{MACPLAIN}", mac_plain);
  replace_all(out, "{MACTAIL}", mac_plain.substr(6));
  replace_all(out, "{UUID}", uuid_.to_string());
  replace_all(out, "{NAME}", behavior_.display_name.empty()
                                 ? spec_.vendor + " " + spec_.model
                                 : behavior_.display_name);
  replace_all(out, "{MODEL}", spec_.model);
  replace_all(out, "{SERIAL}", behavior_.upnp_serial_is_mac
                                   ? mac
                                   : mac_plain.substr(4) + "SN");
  return out;
}

std::string TestbedDevice::dhcp_hostname() {
  switch (behavior_.hostname_policy) {
    case HostnamePolicy::kNone:
      return "";
    case HostnamePolicy::kModel:
      return sanitized(spec_.vendor + "-" + spec_.model);
    case HostnamePolicy::kNameWithMac:
      return sanitized(spec_.vendor + "-" + spec_.model) + "-" +
             host_.mac().to_string_plain();
    case HostnamePolicy::kVendorPartialMac:
      return spec_.vendor + "-" + host_.mac().to_string_plain().substr(8);
    case HostnamePolicy::kDisplayName:
      return sanitized(behavior_.display_name.empty() ? "Home-" + spec_.model
                                                      : behavior_.display_name);
    case HostnamePolicy::kRandomized:
      return "host-" + random_token(rng_, 8);
  }
  return "";
}

void TestbedDevice::start() {
  if (started_) return;
  started_ = true;
  host_.on_ip_acquired = [this](Host&) { on_ip_acquired(); };
  if (behavior_.use_dhcp) {
    host_.start_dhcp(dhcp_hostname(), behavior_.dhcp_vendor_class,
                     behavior_.dhcp_params);
  } else if (host_.has_ip()) {
    // Statically configured (the lab assigned the address up front): no
    // DHCP traffic at all — these are the paper's ~8% non-DHCP devices.
    on_ip_acquired();
  }
}

void TestbedDevice::on_ip_acquired() {
  setup_mdns();
  setup_ssdp();
  setup_services();
  schedule_periodic_behaviors();
}

void TestbedDevice::setup_mdns() {
  if (behavior_.mdns_services.empty() && behavior_.mdns_query_interval_s <= 0)
    return;
  mdns_.emplace(host_);
  mdns_->answer_multicast = behavior_.mdns_respond_multicast;
  mdns_->answer_unicast = behavior_.mdns_respond_unicast;

  std::string hostname;
  switch (behavior_.mdns_hostname_policy) {
    case HostnamePolicy::kDisplayName:
      hostname = sanitized(behavior_.display_name) + ".local";
      break;
    case HostnamePolicy::kRandomized:
      hostname = "h" + random_token(rng_, 8) + ".local";
      break;
    default:
      hostname = sanitized(spec_.vendor + "-" + spec_.model) + ".local";
  }
  mdns_->set_hostname(hostname);

  for (const auto& tmpl : behavior_.mdns_services) {
    MdnsService service;
    service.instance = expand(tmpl.instance_pattern);
    service.service_type = tmpl.service_type;
    service.port = tmpl.port;
    for (const auto& txt : tmpl.txt_patterns) service.txt.push_back(expand(txt));
    mdns_->add_service(std::move(service));
  }
  mdns_->announce();

  if (behavior_.mdns_query_interval_s > 0 && !behavior_.mdns_query_types.empty()) {
    host_.loop().schedule_periodic(
        SimTime::from_seconds(1 + rng_.uniform() * 5),
        SimTime::from_seconds(behavior_.mdns_query_interval_s), [this] {
          const auto& types = behavior_.mdns_query_types;
          mdns_->query(types[mdns_query_counter_++ % types.size()],
                       /*unicast_response=*/rng_.chance(0.2));
        });
  }
}

void TestbedDevice::setup_ssdp() {
  const bool uses_ssdp = behavior_.ssdp_respond ||
                         behavior_.ssdp_msearch_interval_s > 0 ||
                         behavior_.ssdp_notify_interval_s > 0 ||
                         behavior_.ssdp_description;
  if (!uses_ssdp) return;
  ssdp_.emplace(host_);
  ssdp_->respond_to_msearch = behavior_.ssdp_respond;
  if (!behavior_.ssdp_server.empty()) ssdp_->server_string = behavior_.ssdp_server;

  if (behavior_.ssdp_description) {
    UpnpDeviceDescription desc;
    desc.device_type = "urn:schemas-upnp-org:device:Basic:1";
    desc.friendly_name = expand("{NAME}");
    desc.manufacturer = spec_.vendor;
    desc.model_name = spec_.model;
    desc.serial_number = expand("{SERIAL}");
    desc.udn = "uuid:" + uuid_.to_string();
    desc.service_types = {"urn:schemas-upnp-org:service:ConnectionManager:1"};
    ssdp_->set_description(std::move(desc));
    ssdp_->notification_types = {"upnp:rootdevice",
                                 "urn:dial-multiscreen-org:service:dial:1"};
  }

  if (behavior_.ssdp_msearch_interval_s > 0 &&
      !behavior_.ssdp_search_targets.empty()) {
    host_.loop().schedule_periodic(
        SimTime::from_seconds(2 + rng_.uniform() * 10),
        SimTime::from_seconds(behavior_.ssdp_msearch_interval_s), [this] {
          for (const auto& st : behavior_.ssdp_search_targets)
            ssdp_->msearch(st);
        });
  }
  if (behavior_.ssdp_notify_interval_s > 0) {
    host_.loop().schedule_periodic(
        SimTime::from_seconds(3 + rng_.uniform() * 10),
        SimTime::from_seconds(behavior_.ssdp_notify_interval_s), [this] {
          if (!behavior_.ssdp_server_rotation.empty()) {
            // LG's three-firmware rotation (§5.1).
            ssdp_->server_string =
                behavior_.ssdp_server_rotation[ssdp_server_rotation_index_++ %
                                               behavior_.ssdp_server_rotation.size()];
          }
          ssdp_->notify_alive();
          if (behavior_.ssdp_notify_bad_prefix) {
            // Fire TV's misconfiguration: NOTIFY advertising a /16 address
            // that does not exist on this LAN.
            SsdpMessage bad;
            bad.kind = SsdpKind::kNotify;
            bad.search_target = "upnp:rootdevice";
            bad.nts = "ssdp:alive";
            bad.usn = "uuid:" + uuid_.to_string() + "::upnp:rootdevice";
            bad.server = ssdp_->server_string;
            bad.location = "http://192.168.0.0:49152/description.xml";
            host_.send_udp(kSsdpGroupV4, host_.ephemeral_port(), kSsdpPort,
                           encode_ssdp(bad));
          }
        });
  }
}

void TestbedDevice::setup_services() {
  // -- TLS service -------------------------------------------------------
  if (behavior_.tls_server) {
    const TlsServerSpec spec = *behavior_.tls_server;
    host_.listen_tcp(spec.port, [this, spec](Host&, TcpConnection& conn) {
      conn.on_data = [this, spec](TcpConnection& c, BytesView data) {
        const auto records = decode_tls_records(data);
        for (const auto& rec : records) {
          if (!decode_client_hello(rec)) continue;
          TlsServerHello hello;
          hello.version = spec.version;
          hello.random = rng_.bytes(32);
          hello.cipher_suite =
              spec.version == TlsVersion::kTls13 ? 0x1301 : 0xc02f;
          Bytes out = encode_server_hello(hello);

          CertificateInfo cert;
          cert.key_bits = spec.key_bits;
          cert.validity_days = spec.validity_days;
          bool encrypted = false;
          switch (spec.cert) {
            case CertPolicy::kSelfSignedLocalIp:
              cert.subject_cn = host_.ip().to_string();
              cert.issuer_cn = cert.subject_cn;
              break;
            case CertPolicy::kPrivatePki:
              cert.subject_cn = sanitized(spec_.model) + ".local";
              cert.issuer_cn = "Cast Internal Root CA";
              break;
            case CertPolicy::kEncrypted:
              cert.subject_cn = sanitized(spec_.model);
              cert.issuer_cn = "Device Local CA";
              encrypted = true;
              break;
            case CertPolicy::kSelfSignedLong:
              cert.subject_cn = sanitized(spec_.vendor + "-" + spec_.model);
              cert.issuer_cn = cert.subject_cn;
              break;
          }
          const Bytes cert_record =
              encode_certificate(cert, spec.version, encrypted);
          out.insert(out.end(), cert_record.begin(), cert_record.end());
          const Bytes app = encode_application_data(
              rng_, 120 + rng_.below(400), spec.version);
          out.insert(out.end(), app.begin(), app.end());
          c.send(std::move(out));
          return;
        }
        // Non-TLS bytes on a TLS port: close (Nessus sees the handshake
        // requirement).
        c.close();
      };
    });
  }

  // -- HTTP services -----------------------------------------------------
  for (const auto& http : behavior_.http_servers) {
    host_.listen_tcp(http.port, [this, http](Host&, TcpConnection& conn) {
      conn.on_data = [this, http](TcpConnection& c, BytesView data) {
        const auto req = decode_http_request(data);
        if (!req) {
          c.close();
          return;
        }
        HttpResponse res;
        if (!http.server_banner.empty())
          res.headers.add("Server", http.server_banner);
        if (req->target == "/" || req->target == "/index.html") {
          std::string body = "<html><head>";
          if (http.jquery_12)
            body += "<script src=\"jquery-1.2.min.js\"></script>";
          body += "</head><body>" + spec_.vendor + " " + spec_.model +
                  "</body></html>";
          res.body = bytes_of(body);
        } else if (http.expose_backup && req->target == "/backup") {
          res.body = bytes_of("config_version=3\nadmin_user=admin\n"
                              "wifi_ssid=HomeNet\nrtsp_port=554\n");
        } else if (http.onvif_snapshot &&
                   req->target.find("/onvif/snapshot") == 0) {
          res.headers.add("Content-Type", "image/jpeg");
          res.body = rng_.bytes(256);  // an unauthenticated "snapshot"
        } else if (http.list_accounts && req->target == "/cgi/users") {
          res.body = bytes_of("admin\nuser\nguest\nrecordings:/mnt/sdcard/record\n");
        } else {
          res.status = 404;
          res.reason = "Not Found";
        }
        c.send(encode_http_response(res));
        c.close();
      };
    });
  }

  // -- Telnet ---------------------------------------------------------------
  if (behavior_.telnet_server) {
    host_.listen_tcp(23, [this](Host&, TcpConnection& conn) {
      conn.on_established = [this](TcpConnection& c) {
        c.send(bytes_of(spec_.vendor + " login: "));
      };
      conn.on_data = [](TcpConnection& c, BytesView) {
        c.send(bytes_of("Password: "));
      };
    });
  }

  // -- DNS server (cache-snooping-prone, §5.2) --------------------------------
  if (behavior_.dns_server) {
    host_.open_udp(53, [this](Host&, const PacketView& packet,
                              const UdpDatagramView& udp) {
      if (!packet.ipv4) return;
      const auto query = decode_dns(udp.payload);
      if (!query || query->is_response || query->questions.empty()) return;
      DnsMessage response;
      response.id = query->id;
      response.is_response = true;
      const DnsQuestion& q = query->questions.front();
      response.questions.push_back(q);
      if (q.name.to_string() == "version.bind") {
        response.answers.push_back(
            DnsRecord::make_txt(q.name, {behavior_.dns_banner}));
      } else {
        // Cache-snooping exposure: recently "resolved" names answer with a
        // low TTL; everything else gets a fixed record. Also leaks the
        // resolver's identity (§5.2: hostname + private IP of DNS server).
        DnsRecord a = DnsRecord::make_a(q.name, Ipv4Address(93, 184, 216, 34),
                                        /*ttl=*/60);
        a.cache_flush = false;
        response.answers.push_back(std::move(a));
        response.additional.push_back(DnsRecord::make_a(
            DnsName::from_string(host_.label() + ".local"), host_.ip()));
      }
      host_.send_udp(packet.ipv4->src, 53, value(udp.src_port),
                     encode_dns(response));
    });
  }

  // -- TPLINK-SHP server -------------------------------------------------------
  if (behavior_.tplink_server) {
    const auto sysinfo = [this]() {
      TplinkSysinfo info;
      info.alias = "TP-Link Plug";
      info.dev_name = spec_.model;
      info.model = spec_.model;
      info.device_id = to_hex(rng_.fork("devid").bytes(20));
      info.hw_id = to_hex(rng_.fork("hwid").bytes(16));
      info.oem_id = to_hex(rng_.fork("oemid").bytes(16));
      info.mac = host_.mac().to_string();
      info.latitude = behavior_.latitude;
      info.longitude = behavior_.longitude;
      return info;
    };
    host_.open_udp(kTplinkPort, [this, sysinfo](Host&, const PacketView& packet,
                                                const UdpDatagramView& udp) {
      if (!packet.ipv4) return;
      const auto cmd = decode_tplink_udp(udp.payload);
      if (!cmd || cmd->find_path("system.get_sysinfo") == nullptr) return;
      host_.send_udp(packet.ipv4->src, kTplinkPort, value(udp.src_port),
                     encode_tplink_udp(sysinfo().to_json()));
    });
    host_.listen_tcp(kTplinkPort, [this, sysinfo](Host&, TcpConnection& conn) {
      conn.on_data = [this, sysinfo](TcpConnection& c, BytesView data) {
        const auto cmd = decode_tplink_tcp(data);
        if (!cmd) return;
        // Unauthenticated control (§5.1): any command succeeds.
        if (cmd->find_path("system.get_sysinfo") != nullptr) {
          c.send(encode_tplink_tcp(sysinfo().to_json()));
        } else {
          json::Object ok;
          ok.emplace("err_code", 0);
          c.send(encode_tplink_tcp(json::Value(std::move(ok))));
        }
      };
    });
  }

  // -- CoAP server (IoTivity-ish) ---------------------------------------------
  if (behavior_.coap_server) {
    host_.open_udp(kCoapPort, [this](Host&, const PacketView& packet,
                                     const UdpDatagramView& udp) {
      if (!packet.ipv4) return;
      const auto msg = decode_coap(udp.payload);
      if (!msg || msg->code != kCoapGet) return;
      CoapMessage res;
      res.type = CoapType::kAck;
      res.code = kCoapContent;
      res.message_id = msg->message_id;
      res.token = msg->token;
      res.payload = bytes_of(R"([{"href":"/oic/res","rt":"oic.wk.res"}])");
      host_.send_udp(packet.ipv4->src, kCoapPort, value(udp.src_port),
                     encode_coap(res));
    });
  }

  // -- misc open ports ---------------------------------------------------------
  for (const std::uint16_t port : behavior_.misc_tcp_open) {
    host_.listen_tcp(port, [this](Host&, TcpConnection& conn) {
      conn.on_data = [this](TcpConnection& c, BytesView) {
        c.send(rng_.bytes(16));
        c.close();
      };
    });
  }
  for (const std::uint16_t port : behavior_.misc_udp_open) {
    host_.open_udp(port, [](Host&, const PacketView&, const UdpDatagramView&) {});
  }
}

void TestbedDevice::schedule_periodic_behaviors() {
  EventLoop& loop = host_.loop();
  const auto jitter = [this](double base) {
    return SimTime::from_seconds(base * (0.5 + rng_.uniform()));
  };

  if (behavior_.eapol_interval_s > 0) {
    loop.schedule_periodic(jitter(30),
                           SimTime::from_seconds(behavior_.eapol_interval_s),
                           [this] { host_.send_eapol_key(rng_); });
  }
  if (behavior_.llc_xid) {
    loop.schedule_periodic(jitter(60), SimTime::from_seconds(1800),
                           [this] { host_.send_llc_xid_broadcast(); });
  }
  if (behavior_.ping_gateway_interval_s > 0) {
    loop.schedule_periodic(
        jitter(20), SimTime::from_seconds(behavior_.ping_gateway_interval_s),
        [this] {
          host_.send_icmp_echo(Ipv4Address((host_.ip().value() & 0xffffff00) | 1));
        });
  }
  if (behavior_.ipv6) {
    // DHCPv6 Solicit to ff02::1:2 at boot and every ~4 h: the DUID-LL inside
    // broadcasts the MAC to every multicast listener.
    loop.schedule_periodic(jitter(20), SimTime::from_hours(4), [this] {
      Dhcpv6Message solicit;
      solicit.type = Dhcpv6Type::kSolicit;
      solicit.transaction_id =
          static_cast<std::uint32_t>(rng_.next_u32() & 0xffffff);
      solicit.set_client_duid_ll(host_.mac());
      solicit.set_fqdn(host_.label());
      host_.send_udp_v6(dhcpv6_multicast_group(), kDhcpv6ClientPort,
                        kDhcpv6ServerPort, encode_dhcpv6(solicit));
    });
  }
  if (behavior_.matter_interval_s > 0) {
    loop.schedule_periodic(jitter(60),
                           SimTime::from_seconds(behavior_.matter_interval_s),
                           [this] { send_matter_traffic(); });
  }
  if (behavior_.icmpv6_interval_s > 0 && behavior_.ipv6) {
    loop.schedule_periodic(
        jitter(15), SimTime::from_seconds(behavior_.icmpv6_interval_s), [this] {
          // Probe a pseudorandom link-local neighbor (the Nest Hub's 2,597
          // distinct multicast solicitations, §5.1).
          const Ipv6Address target = Ipv6Address::link_local_from_mac(
              MacAddress::from_u64(0x02a000000000ull + rng_.below(4096)));
          host_.send_neighbor_solicitation(target);
        });
  }
  if (behavior_.arp_daily_scan) {
    loop.schedule_periodic(jitter(120), SimTime::from_hours(24),
                           [this] { host_.arp_scan_subnet(); });
  }
  if (behavior_.arp_unicast_probes) {
    loop.schedule_periodic(jitter(600), SimTime::from_hours(6),
                           [this] { arp_probe_known_peers(); });
  }
  if (behavior_.arp_public_ip_probe) {
    loop.schedule_periodic(jitter(300), SimTime::from_hours(12), [this] {
      host_.arp_request(Ipv4Address(8, 8, 8, 8));  // §5.1: public-IP requests
    });
  }
  if (behavior_.tplink_scan_interval_s > 0) {
    loop.schedule_periodic(
        jitter(90), SimTime::from_seconds(behavior_.tplink_scan_interval_s),
        [this] { send_tplink_scan(); });
  }
  if (behavior_.tuya_beacon) {
    loop.schedule_periodic(jitter(10),
                           SimTime::from_seconds(behavior_.tuya_interval_s),
                           [this] { send_tuya_beacon(); });
  }
  if (behavior_.coap_query_interval_s > 0) {
    loop.schedule_periodic(
        jitter(45), SimTime::from_seconds(behavior_.coap_query_interval_s),
        [this] { send_coap_query(); });
  }
  if (behavior_.lifx_beacon_interval_s > 0) {
    loop.schedule_periodic(
        jitter(200), SimTime::from_seconds(behavior_.lifx_beacon_interval_s),
        [this] { send_lifx_beacon(); });
  }
  if (behavior_.unknown_beacon_interval_s > 0) {
    loop.schedule_periodic(
        jitter(30), SimTime::from_seconds(behavior_.unknown_beacon_interval_s),
        [this] { send_unknown_beacon(); });
  }
  if (behavior_.rtp_interval_s > 0) {
    loop.schedule_periodic(jitter(120),
                           SimTime::from_seconds(behavior_.rtp_interval_s),
                           [this] { send_rtp_beacon(); });
  }
  if (behavior_.cluster_udp_interval_s > 0) {
    loop.schedule_periodic(
        jitter(30), SimTime::from_seconds(behavior_.cluster_udp_interval_s),
        [this] { send_cluster_udp(); });
  }
  if (behavior_.cluster_tls_interval_s > 0) {
    loop.schedule_periodic(
        jitter(60), SimTime::from_seconds(behavior_.cluster_tls_interval_s),
        [this] { dial_cluster_tls(); });
  }
  if (behavior_.http_poll_interval_s > 0) {
    loop.schedule_periodic(
        jitter(90), SimTime::from_seconds(behavior_.http_poll_interval_s),
        [this] { poll_peer_http(); });
  }
}

void TestbedDevice::poll_peer_http() {
  TestbedDevice* peer = coordinator_;
  if (peer == nullptr || peer == this || !peer->host().has_ip()) return;
  if (peer->behavior().http_servers.empty()) return;
  const std::uint16_t port = peer->behavior().http_servers.front().port;
  auto& conn = host_.connect_tcp(peer->host().ip(), port);
  conn.on_established = [this](TcpConnection& c) {
    HttpRequest req;
    req.target = "/setup/eureka_info";
    if (!behavior_.http_client_user_agent.empty())
      req.headers.add("User-Agent", behavior_.http_client_user_agent);
    c.send(encode_http_request(req));
  };
  conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
}

void TestbedDevice::arp_probe_known_peers() {
  // Targeted (MAC-addressed) ARP requests to every cached peer; everyone
  // answers these even when they ignore broadcast sweeps (§5.1).
  for (const auto& [ip, mac] : host_.arp_cache()) {
    ArpPacket probe;
    probe.op = ArpOp::kRequest;
    probe.sender_mac = host_.mac();
    probe.sender_ip = host_.ip();
    probe.target_mac = mac;
    probe.target_ip = ip;
    EthernetFrame eth;
    eth.dst = mac;
    eth.src = host_.mac();
    eth.ethertype = static_cast<std::uint16_t>(EtherType::kArp);
    eth.payload = encode_arp(probe);
    host_.send_frame(encode_ethernet(eth));
  }
}

void TestbedDevice::send_tplink_scan() {
  // Broadcast get_sysinfo to the subnet (how Echo/Google find TP-Link gear).
  const Ipv4Address bcast(host_.ip().value() | 0xff);
  host_.send_udp(bcast, host_.ephemeral_port(), kTplinkPort,
                 encode_tplink_udp(tplink_get_sysinfo_request()));
}

void TestbedDevice::send_tuya_beacon() {
  TuyaDiscovery d;
  d.gw_id = to_hex(rng_.fork("gwid").bytes(10));
  d.ip = host_.ip().to_string();
  d.product_key = "key" + to_hex(rng_.fork("pk").bytes(6));
  const Ipv4Address bcast(host_.ip().value() | 0xff);
  host_.send_udp(bcast, host_.ephemeral_port(), kTuyaPortPlain,
                 encode_tuya_discovery(d, rtp_sequence_++));
}

void TestbedDevice::send_coap_query() {
  CoapMessage get;
  get.type = CoapType::kNonConfirmable;
  get.code = kCoapGet;
  get.message_id = rtp_sequence_++;
  get.set_uri_path("oic/res");
  host_.send_udp(Ipv4Address(224, 0, 1, 187), host_.ephemeral_port(), kCoapPort,
                 encode_coap(get));
}

void TestbedDevice::send_lifx_beacon() {
  // Echo's unexplained UDP 56700 broadcast (Lifx discovery format: binary,
  // unclassifiable by the tools — the §5.1 "unidentified traffic" example).
  ByteWriter w;
  w.u16_le(41);          // Lifx header size
  w.u16_le(0x3400);      // protocol + addressable bits
  w.u32_le(0);           // source
  w.fill(0, 8);          // target
  w.raw(rng_.bytes(25));
  host_.send_udp(Ipv4Address(255, 255, 255, 255), host_.ephemeral_port(), 56700,
                 w.take());
}

void TestbedDevice::send_unknown_beacon() {
  Bytes payload = rng_.bytes(24 + rng_.below(48));
  if (behavior_.unknown_beacon_d0 && !payload.empty()) payload[0] = 0xd0;
  const Ipv4Address bcast(host_.ip().value() | 0xff);
  host_.send_udp(bcast, host_.ephemeral_port(), behavior_.unknown_beacon_port,
                 payload);
}

void TestbedDevice::send_matter_traffic() {
  // Commissionable-node advertisement over mDNS (the §7 exposure: the
  // instance name is MAC-derived in today's firmware)...
  MatterCommissionable node;
  node.discriminator = static_cast<std::uint16_t>(mac().to_u64() & 0xfff);
  node.vendor_id = 0xfff1;
  node.product_id = 0x8001;
  node.instance = mac().to_string_plain();
  const DnsMessage advert = matter_commissionable_advertisement(
      node, host_.label() + ".local", host_.ip());
  host_.send_udp(kMdnsGroupV4, kMdnsPort, kMdnsPort, encode_dns(advert));

  // ...plus operational session traffic to the platform coordinator on the
  // Matter port (opaque protected payload, like the real wire).
  TestbedDevice* peer = coordinator_;
  if (peer == nullptr || peer == this || !peer->host().has_ip()) return;
  MatterMessage msg;
  msg.session_id = static_cast<std::uint16_t>(1 + (mac().to_u64() & 0x7fff));
  msg.message_counter = rtp_sequence_++;
  msg.source_node = mac().to_u64();
  msg.payload = rng_.bytes(32 + rng_.below(64));
  host_.send_udp(peer->host().ip(), kMatterPort, kMatterPort,
                 encode_matter(msg));
}

void TestbedDevice::send_cluster_udp() {
  // The unidentified UDP cluster protocol (Figure 4e): opaque binary to the
  // platform coordinator on an unregistered port. First byte pinned below
  // 0x40 so neither the RTP nor the TPLINK heuristic can claim it — this
  // traffic is *meant* to stay unclassifiable, like the real thing.
  TestbedDevice* peer = coordinator_;
  if (peer == nullptr || peer == this || !peer->host().has_ip()) return;
  Bytes payload = rng_.bytes(40 + rng_.below(80));
  payload[0] &= 0x3f;
  host_.send_udp(peer->host().ip(), behavior_.cluster_udp_port,
                 behavior_.cluster_udp_port, std::move(payload));
}

void TestbedDevice::send_rtp_beacon() {
  TestbedDevice* peer = coordinator_;
  if (peer == nullptr || peer == this || !peer->host().has_ip()) return;
  RtpPacket rtp;
  rtp.payload_type = 97;
  rtp.sequence = rtp_sequence_++;
  rtp.timestamp = static_cast<std::uint32_t>(host_.loop().now().us());
  rtp.ssrc = static_cast<std::uint32_t>(host_.mac().to_u64());
  rtp.payload = rng_.bytes(160);
  host_.send_udp(peer->host().ip(), behavior_.rtp_port, behavior_.rtp_port,
                 encode_rtp(rtp));
}

void TestbedDevice::dial_cluster_tls() {
  TestbedDevice* peer = coordinator_;
  if (peer == nullptr || peer == this || !peer->host().has_ip()) return;
  if (!peer->behavior().tls_server) return;
  const TlsServerSpec& server = *peer->behavior().tls_server;
  auto& conn = host_.connect_tcp(peer->host().ip(), server.port);
  const TlsVersion version = server.version;
  conn.on_established = [this, version](TcpConnection& c) {
    TlsClientHello hello;
    hello.version = version;
    hello.random = rng_.bytes(32);
    hello.cipher_suites = version == TlsVersion::kTls13
                              ? std::vector<std::uint16_t>{0x1301, 0x1302}
                              : std::vector<std::uint16_t>{0xc02f, 0xc030};
    c.send(encode_client_hello(hello));
  };
  conn.on_data = [this, version](TcpConnection& c, BytesView) {
    // Server flight received; exchange a little application data and close.
    c.send(encode_application_data(rng_, 80 + rng_.below(200), version));
    c.close();
  };
}

}  // namespace roomnet
