// The MonIoTr Lab device inventory (paper Table 3): 93 IP-based consumer IoT
// devices across 7 categories, with their platform/cluster membership used
// to reproduce the vendor communication clusters of Figures 1 and 4.
#pragma once

#include <string>
#include <vector>

namespace roomnet {

enum class DeviceCategory {
  kGameConsole,
  kGenericIot,
  kHomeAppliance,
  kHomeAutomation,
  kMediaTv,
  kSurveillance,
  kVoiceAssistant,
};

std::string to_string(DeviceCategory category);

/// Local-interop platform the device participates in (drives the TLS/UDP
/// cluster traffic of Figure 4 and the discovery relationships of §4.1).
enum class Platform {
  kNone,
  kAlexa,       // Amazon Echo ecosystem: TLSv1.2, self-signed 3-month certs
  kGoogleHome,  // Google/Nest: TLSv1.2 private PKI, port 8009
  kHomeKit,     // Apple: TLSv1.3, encrypted certificates
  kTpLink,      // TPLINK-SHP speakers
  kTuya,        // TuyaLP beacons
  kSmartThings,
};

struct DeviceSpec {
  std::string vendor;
  std::string model;
  DeviceCategory category;
  Platform platform = Platform::kNone;
};

/// The 93-device catalog. Vendor counts match Table 3 exactly:
/// Game Console: Nintendo(1); Generic IoT: Keyco(1) Oxylink(1) Renpho(1)
/// Tuya(1) Withings(3); Home Appliance: Anova(1) Behmor(1) Blueair(1) GE(1)
/// LG(1) Samsung(3) Smarter(1) Xiaomi(1); Home Automation: Amazon(1)
/// Aqara(1) Google(1) IKEA(1) MagicHome(1) Meross(3) Philips(1) Ring(1)
/// Sengled(1) SmartThings(1) SwitchBot(1) TP-Link(2) Tuya(3) WeMo(1) Wiz(1)
/// Yeelight(1); Media/TV: Amazon(1) Apple(1) Google(1) LG(1) Roku(1)
/// Samsung(1) Tivostream(1); Surveillance: Amcrest(1) Arlo(2) Blink(1)
/// D-Link(1) Google(2) ICSee(1) Lefun(1) Microseven(1) Ring(4) Tuya(1)
/// Ubell(1) Wansview(1) Wyze(1) Yi(1); Voice Assistant: Amazon(17)
/// Apple(3) Meta(1) Google(7).
const std::vector<DeviceSpec>& moniotr_catalog();

/// Distinct device models in the catalog (paper: 78 unique models).
std::size_t unique_model_count();

}  // namespace roomnet
