#include "testbed/profiles.hpp"

namespace roomnet {

namespace {

// Sixteen distinct DHCP client versions (§5.1: "16 unique DHCP client
// versions from 40% of devices"), including the old/custom ones the paper
// flags on Amazon and Google products.
const char* kDhcpClients[] = {
    "udhcp 0.9.9-pre",      "udhcp 1.14.3-Amazon", "udhcp 1.19.5",
    "udhcp 1.24.2",         "dhcpcd-5.5.6",        "dhcpcd-6.8.2",
    "dhcpcd 8.1.4",         "Google-Dhcp-Client",  "busybox-dhcp",
    "Linux 3.10 dhcp",      "tuya-dhcp-1.0",       "RTOS-DHCP",
    "esp-idf-dhcp",         "lwIP-2.0.3",          "ti-netcfg",
    "AppleDHCP-1",
};

DeviceBehavior amazon_echo(const DeviceSpec& spec, std::size_t index) {
  (void)spec;
  DeviceBehavior b;
  b.hostname_policy = HostnamePolicy::kModel;
  b.dhcp_vendor_class = "udhcp 1.14.3-Amazon";  // old custom client (§5.1)
  // Unexpected deprecated requests: SMTP server (69), Name Server (5),
  // Root Path (17).
  b.dhcp_params = {1, 3, 6, 12, 15, 28, 42, 5, 17, 69};
  b.ipv6 = true;  // Matter support observed from Echo speakers (§4.1)
  b.icmpv6_interval_s = 900;
  b.ping_gateway_interval_s = 600;
  b.arp_daily_scan = true;
  b.arp_unicast_probes = true;
  b.responds_to_broadcast_arp = true;
  b.mdns_query_interval_s = 20 + static_cast<double>(index % 5) * 20;  // 20-100 s
  b.mdns_query_types = {"_amzn-wplay._tcp.local", "_matter._tcp.local",
                        "_spotify-connect._tcp.local"};
  // Matter presence is advertised via the periodic commissionable broadcast
  // (send_matter_traffic), not the query responder: Matter nodes announce
  // unsolicited rather than answering arbitrary PTR queries, which keeps
  // Table 4's per-discoverer responder counts at the paper's scale.
  b.mdns_services = {{.service_type = "_amzn-wplay._tcp.local",
                      .instance_pattern = "{MODEL}-{MACTAIL}",
                      .port = 55442,
                      .txt_patterns = {"a={UUID}", "t=echo"}}};
  b.mdns_hostname_policy = HostnamePolicy::kModel;
  b.ssdp_msearch_interval_s = 9000;  // 2.5 h (§5.1: every 2-3 hours)
  b.ssdp_search_targets = {"ssdp:all", "upnp:rootdevice"};  // generic (§5.1)
  b.tls_server = TlsServerSpec{.port = 55443,
                               .version = TlsVersion::kTls12,
                               .cert = CertPolicy::kSelfSignedLocalIp,
                               .key_bits = 2048,
                               .validity_days = 90};
  b.cluster_tls_interval_s = 1200;
  b.http_servers = {{.port = 55442, .server_banner = ""}};  // audio cache
  b.misc_tcp_open = {4070};                                 // Spotify control
  b.lifx_beacon_interval_s = 7200;  // UDP 56700 every 2 h (§5.1)
  b.unknown_beacon_port = 56700;
  // The Figure 4e "unidentified UDP" Echo cluster protocol: constant
  // coordinator-directed chatter no classifier can name.
  b.cluster_udp_interval_s = 45;
  b.cluster_udp_port = 33434;
  b.matter_interval_s = 600;  // IPv6 Matter session traffic (§4.1)
  // Multi-room audio RTP on UDP 55444 for a subset of speakers.
  if (index % 4 == 0) {
    b.rtp_interval_s = 3600;
    b.rtp_port = 55444;
  }
  // Most Echo speakers scan for TP-Link devices (§5.1 TPLINK-SHP).
  if (index % 8 != 7) b.tplink_scan_interval_s = 7200;
  return b;
}

DeviceBehavior google_device(const DeviceSpec& spec, std::size_t index) {
  DeviceBehavior b;
  const bool speaker_or_hub = spec.category == DeviceCategory::kVoiceAssistant;
  b.hostname_policy = speaker_or_hub ? HostnamePolicy::kDisplayName
                                     : HostnamePolicy::kModel;
  b.display_name = "Jane's " + spec.model;
  b.dhcp_vendor_class = "Google-Dhcp-Client";
  b.dhcp_params = {1, 3, 6, 12, 15, 28, 119};
  b.ipv6 = true;
  b.icmpv6_interval_s = spec.model == "Nest Hub" ? 60 : 600;  // 2,597 addrs
  b.ping_gateway_interval_s = 900;
  b.mdns_query_interval_s = 20 + static_cast<double>(index % 4) * 25;
  b.mdns_query_types = {"_googlecast._tcp.local", "_matter._tcp.local"};
  b.mdns_respond_unicast = true;
  b.mdns_services = {{.service_type = "_googlecast._tcp.local",
                      .instance_pattern = "{MODEL}-{UUID}",
                      .port = 8009,
                      .txt_patterns = {"id={UUID}", "md={MODEL}",
                                       "fn={NAME}"}}};
  b.mdns_hostname_policy = HostnamePolicy::kDisplayName;
  b.ssdp_msearch_interval_s = 20;  // §5.1: Google sends SSDP every 20 s
  b.ssdp_search_targets = {"urn:dial-multiscreen-org:service:dial:1"};
  // Only the Chromecast-capable screens answer multicast searches (§5.1:
  // just 9 devices respond — 4 smart TVs and the two Nest hubs among them).
  const bool chromecast_screen =
      spec.model.find("Nest Hub") != std::string::npos ||
      spec.category == DeviceCategory::kMediaTv;
  b.ssdp_respond = chromecast_screen;
  b.ssdp_description = chromecast_screen;
  b.ssdp_server = "Linux/3.8.13, UPnP/1.0, Portable SDK for UPnP devices/1.6.18";
  // Port 8009 with the weak-key finding (Nessus high severity: 64-122 bits).
  b.tls_server = TlsServerSpec{
      .port = 8009,
      .version = TlsVersion::kTls12,
      .cert = CertPolicy::kPrivatePki,
      .key_bits = static_cast<std::uint16_t>(64 + (index * 7) % 59),
      .validity_days = 20 * 365};
  b.cluster_tls_interval_s = 1500;
  b.http_servers = {{.port = 8008, .server_banner = "Chromecast"}};
  b.http_client_user_agent =
      "Chromecast OS/1.56.281627 " + spec.model + " CrKey/1.56";
  // Control/sync RTP on 10000-10010 (Appendix C.2 misclassification source).
  b.rtp_interval_s = 1800;
  b.rtp_port = static_cast<std::uint16_t>(10000 + index % 11);
  if (index % 3 == 0) b.tplink_scan_interval_s = 10800;
  b.http_poll_interval_s = 600;  // Cast peers poll each other's /setup
  return b;
}

DeviceBehavior apple_device(const DeviceSpec& spec, std::size_t index) {
  DeviceBehavior b;
  b.hostname_policy = HostnamePolicy::kDisplayName;
  b.display_name = "Jane Doe's Kitchen " + spec.model;
  b.dhcp_vendor_class = "AppleDHCP-1";
  b.dhcp_params = {1, 3, 6, 12, 15, 119};
  b.ipv6 = true;
  b.icmpv6_interval_s = 600;
  b.ping_gateway_interval_s = 1200;
  b.mdns_query_interval_s = 20 + static_cast<double>(index % 5) * 16;
  b.mdns_query_types = {"_airplay._tcp.local", "_companion-link._tcp.local",
                        "_sleep-proxy._udp.local"};
  b.mdns_respond_unicast = true;
  b.mdns_services = {{.service_type = "_airplay._tcp.local",
                      .instance_pattern = "{NAME}",
                      .port = 7000,
                      .txt_patterns = {"deviceid={MAC}", "model={MODEL}"}},
                     {.service_type = "_companion-link._tcp.local",
                      .instance_pattern = "{NAME}",
                      .port = 49152,
                      .txt_patterns = {"rpBA={MAC}"}}};
  b.mdns_hostname_policy = HostnamePolicy::kDisplayName;
  // Apple-to-Apple TLS 1.3 with encrypted certificates (§5.2).
  b.tls_server = TlsServerSpec{.port = 49152,
                               .version = TlsVersion::kTls13,
                               .cert = CertPolicy::kEncrypted,
                               .key_bits = 2048,
                               .validity_days = 365};
  b.cluster_tls_interval_s = 1800;
  if (spec.model.find("HomePod Mini") != std::string::npos) {
    // DNS server with cache-snooping exposure; SheerDNS 1.0.0 (§5.2 DNS).
    b.dns_server = true;
    b.dns_banner = "SheerDNS 1.0.0";
    // CoAP traffic whose payloads the paper could not decode.
    b.coap_query_interval_s = 3600;
  }
  (void)index;
  return b;
}

DeviceBehavior tplink_device(const DeviceSpec& spec, std::size_t index) {
  DeviceBehavior b;
  b.hostname_policy = HostnamePolicy::kVendorPartialMac;
  b.dhcp_vendor_class = "udhcp 1.19.5";
  b.tplink_server = true;
  b.latitude = 42.337681;   // Table 5's plaintext home geolocation
  b.longitude = -71.087036;
  b.ping_gateway_interval_s = 1800;
  b.responds_to_broadcast_arp = true;
  (void)spec;
  (void)index;
  return b;
}

DeviceBehavior tuya_device(const DeviceSpec& spec, std::size_t index) {
  DeviceBehavior b;
  b.hostname_policy = HostnamePolicy::kVendorPartialMac;
  b.dhcp_vendor_class = "tuya-dhcp-1.0";
  b.tuya_beacon = true;
  b.tuya_interval_s = 30 + static_cast<double>(index % 3) * 15;
  b.responds_to_broadcast_arp = false;  // Tuya ignores strangers (§5.1)
  b.eapol_interval_s = 7200;
  (void)spec;
  return b;
}

/// UPnP/1.0 SERVER strings (the nine deprecated-UPnP devices of §5.1).
std::string upnp10_server(const std::string& os) {
  return os + ", UPnP/1.0, Private UPnP SDK";
}

/// Vendor "debug/auxiliary" TCP services on semi-random high ports — the
/// long tail behind §4.2's 178 unique open TCP ports. Deterministic per
/// device index; confined to ranges the default scan sweep covers.
void add_debug_ports(DeviceBehavior& b, std::size_t index) {
  b.misc_tcp_open.push_back(
      static_cast<std::uint16_t>(8010 + (index * 7) % 90));
  if (index % 3 != 0)
    b.misc_tcp_open.push_back(
        static_cast<std::uint16_t>(30000 + (index * 13) % 100));
  if (index % 4 == 0)
    b.misc_tcp_open.push_back(
        static_cast<std::uint16_t>(49300 + (index * 11) % 100));
  // A UDP auxiliary service too (silent to generic probes: nmap sees it as
  // open|filtered — the long tail of §4.2's 115 unique UDP ports).
  b.misc_udp_open.push_back(
      static_cast<std::uint16_t>(300 + (index * 17) % 600));
}

DeviceBehavior behavior_for_unadorned(const DeviceSpec& spec,
                                      std::size_t index) {
  // -- platform-wide profiles ------------------------------------------
  if (spec.vendor == "Amazon" && spec.model != "Fire TV")
    return amazon_echo(spec, index);
  if (spec.vendor == "Google") return google_device(spec, index);
  if (spec.vendor == "Apple") return apple_device(spec, index);
  if (spec.vendor == "TP-Link") return tplink_device(spec, index);
  if (spec.vendor == "Tuya") return tuya_device(spec, index);

  DeviceBehavior b;

  if (spec.vendor == "Amazon") {  // Fire TV
    DeviceBehavior fire = amazon_echo(spec, index);
    fire.arp_daily_scan = false;
    fire.lifx_beacon_interval_s = 0;
    fire.ssdp_respond = true;
    fire.ssdp_description = true;
    fire.upnp_serial_is_mac = true;  // exposes own MAC to casting apps (§6.1)
    fire.ssdp_notify_interval_s = 1800;
    fire.ssdp_notify_bad_prefix = true;  // /16 LOCATION misconfiguration
    fire.ssdp_server = "Linux/4.9.113 UPnP/1.0 Cling/2.0";
    return fire;
  }

  if (spec.vendor == "Nintendo") {
    b.hostname_policy = HostnamePolicy::kNone;
    b.ipv6 = true;
    b.icmpv6_interval_s = 3600;
    b.eapol_interval_s = 300;  // chatty 802.1X — the AmazonAWS bait (C.2)
    b.llc_xid = true;
    b.responds_to_broadcast_arp = false;
    return b;
  }

  if (spec.vendor == "Philips") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.dhcp_vendor_class = "dhcpcd-5.5.6";
    b.ipv6 = true;
    b.icmpv6_interval_s = 2400;
    b.eapol_interval_s = 0;  // wired hub
    b.mdns_services = {{.service_type = "_hue._tcp.local",
                        .instance_pattern = "Philips Hue - {MACTAIL}",
                        .port = 443,
                        .txt_patterns = {"bridgeid={MACPLAIN}",
                                         "modelid=BSB002"}}};
    b.mdns_respond_unicast = true;
    b.ssdp_respond = true;
    b.ssdp_description = true;
    b.ssdp_server = upnp10_server("Linux");  // deprecated UPnP 1.0
    b.upnp_serial_is_mac = true;
    b.tls_server = TlsServerSpec{.port = 443,
                                 .version = TlsVersion::kTls12,
                                 .cert = CertPolicy::kSelfSignedLong,
                                 .key_bits = 2048,
                                 .validity_days = 20 * 365};
    b.http_servers = {{.port = 80, .server_banner = "nginx"}};
    b.ping_gateway_interval_s = 600;
    return b;
  }

  if (spec.vendor == "Ring") {
    b.hostname_policy = spec.model == "Chime" ? HostnamePolicy::kNameWithMac
                                              : HostnamePolicy::kModel;
    b.dhcp_vendor_class = "udhcp 1.24.2";
    b.ping_gateway_interval_s = 900;
    b.mdns_services = {{.service_type = "_ring._tcp.local",
                        .instance_pattern = "{MODEL}",
                        .port = 443,
                        .txt_patterns = {}}};
    b.http_servers = {{.port = 80, .server_banner = "nginx-ring"}};
    b.responds_to_broadcast_arp = index % 2 == 0;
    b.unknown_beacon_interval_s = 3600;
    b.unknown_beacon_port = 9998;
    return b;
  }

  if (spec.vendor == "Roku") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.ipv6 = true;
    b.icmpv6_interval_s = 1800;
    b.mdns_services = {{.service_type = "_roku._tcp.local",
                        // The Table 2 finding: a first name plus UUID whose
                        // node bytes are the MAC address.
                        .instance_pattern = "Roku 3 - Jane's Room",
                        .port = 8060,
                        .txt_patterns = {"id={UUID}"}}};
    b.ssdp_respond = true;
    b.ssdp_description = true;
    b.ssdp_server = upnp10_server("Roku/9.4");
    b.upnp_serial_is_mac = true;
    // Roku sends IGD-related SSDP requests (§5.1) — also the deep
    // classifier's CiscoVPN bait.
    b.ssdp_msearch_interval_s = 1800;
    b.ssdp_search_targets = {
        "urn:schemas-upnp-org:device:InternetGatewayDevice:1"};
    b.http_servers = {{.port = 8060, .server_banner = "Roku/9.4 UPnP/1.0"}};
    b.ping_gateway_interval_s = 1200;
    return b;
  }

  if (spec.vendor == "LG") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.eapol_interval_s = 0;  // wired
    b.ipv6 = true;
    b.icmpv6_interval_s = 1800;
    b.ping_gateway_interval_s = 1500;
    if (spec.category == DeviceCategory::kMediaTv) {
      b.ssdp_respond = true;
      b.ssdp_description = true;
      b.ssdp_notify_interval_s = 900;
      // Three different firmware strings in rotation (§5.1 SSDP).
      b.ssdp_server_rotation = {"WebOS TV/Version 0.9", "WebOS/1.5",
                                "WebOS/4.1.0"};
      b.ssdp_server = b.ssdp_server_rotation.front();
      b.http_servers = {{.port = 1830, .server_banner = "WebOS"},
                        {.port = 80, .server_banner = "WebOS"}};
      b.http_client_user_agent = "LG WebOS/4.1.0 UPnP/1.0";
      b.mdns_services = {{.service_type = "_lg-smart-device._tcp.local",
                          .instance_pattern = "{MODEL}",
                          .port = 1830,
                          .txt_patterns = {}}};
    } else {
      b.unknown_beacon_interval_s = 7200;
      b.unknown_beacon_port = 9741;
    }
    return b;
  }

  if (spec.vendor == "Samsung") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.dhcp_vendor_class = "dhcpcd 8.1.4";
    b.eapol_interval_s = 0;
    b.ipv6 = true;
    b.icmpv6_interval_s = 1800;
    b.ping_gateway_interval_s = 1200;
    if (spec.model == "Fridge") {
      // IoTivity resource discovery over CoAP (§5.1).
      b.coap_query_interval_s = 1800;
    }
    if (spec.category == DeviceCategory::kMediaTv) {
      b.ssdp_respond = true;
      b.ssdp_description = true;
      b.ssdp_server = upnp10_server("SHP, Samsung UPnP SDK");
      b.mdns_services = {{.service_type = "_samsungmsf._tcp.local",
                          .instance_pattern = "Samsung {MODEL}",
                          .port = 8001,
                          .txt_patterns = {"id={UUID}"}}};
      b.http_servers = {{.port = 8001, .server_banner = "Samsung TV"},
                        {.port = 80, .server_banner = "Samsung TV"}};
    } else {
      b.unknown_beacon_interval_s = 3600;
      b.unknown_beacon_port = 15600;
    }
    b.cluster_tls_interval_s = 0;
    return b;
  }

  if (spec.vendor == "SmartThings") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.eapol_interval_s = 0;  // wired hub
    b.ipv6 = true;
    b.icmpv6_interval_s = 2400;
    b.tls_server = TlsServerSpec{.port = 8443,
                                 .version = TlsVersion::kTls12,
                                 .cert = CertPolicy::kSelfSignedLong,
                                 .key_bits = 2048,
                                 .validity_days = 28 * 365};
    b.ssdp_msearch_interval_s = 3600;
    b.ssdp_search_targets = {"upnp:rootdevice"};
    b.ping_gateway_interval_s = 600;
    return b;
  }

  if (spec.vendor == "D-Link") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.tls_server = TlsServerSpec{.port = 443,
                                 .version = TlsVersion::kTls12,
                                 .cert = CertPolicy::kSelfSignedLong,
                                 .key_bits = 2048,
                                 .validity_days = 25 * 365};
    b.http_servers = {{.port = 80, .server_banner = "lighttpd/1.4.35"}};
    b.ping_gateway_interval_s = 1800;
    return b;
  }

  if (spec.vendor == "WeMo") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.dhcp_vendor_class = "lwIP-2.0.3";
    b.ipv6 = true;
    b.ping_gateway_interval_s = 1800;
    b.ssdp_respond = true;
    b.ssdp_description = true;
    b.ssdp_server = upnp10_server("Unspecified, WeMo");
    b.ssdp_notify_interval_s = 1200;
    b.dns_server = true;  // cache-snooping-prone DNS (§5.2)
    b.dns_banner = "dnsmasq-2.40";
    b.http_servers = {{.port = 49153, .server_banner = "WeMo HTTP"},
                      {.port = 80, .server_banner = "WeMo HTTP"}};
    return b;
  }

  if (spec.vendor == "Amcrest") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.eapol_interval_s = 0;  // wired camera
    b.use_dhcp = false;      // statically configured NVR-style setup
    b.ssdp_respond = true;
    b.ssdp_description = true;
    b.ssdp_server = upnp10_server("Linux");
    b.upnp_serial_is_mac = true;  // Table 5's serialNumber = MAC
    b.http_servers = {{.port = 80, .server_banner = "Amcrest/2.420"}};
    b.misc_tcp_open = {554};  // RTSP
    return b;
  }

  if (spec.vendor == "Lefun") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.http_servers = {{.port = 80,
                       .server_banner = "GoAhead-Webs",
                       .expose_backup = true}};  // §5.2 backup-file exposure
    b.misc_udp_open = {5000};
    b.unknown_beacon_interval_s = 1800;
    b.unknown_beacon_port = 5000;
    return b;
  }

  if (spec.vendor == "Microseven") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.http_servers = {{.port = 80,
                       .server_banner = "Boa/0.94.13",
                       .jquery_12 = true,        // XSS-prone jQuery 1.2
                       .onvif_snapshot = true,   // unauthenticated snapshot
                       .list_accounts = true}};  // account enumeration
    b.misc_tcp_open = {554, 8080};
    return b;
  }

  if (spec.vendor == "ICSee" || spec.vendor == "Ubell") {
    b.hostname_policy = HostnamePolicy::kNone;
    b.telnet_server = true;  // §4.2: telnet among open services
    b.http_servers = {{.port = 80, .server_banner = "JAWS/1.0"}};
    b.unknown_beacon_interval_s = 900;
    b.unknown_beacon_port = spec.vendor == "ICSee" ? 34567 : 8600;
    b.responds_to_broadcast_arp = false;
    return b;
  }

  if (spec.vendor == "Wansview" || spec.vendor == "Yi" ||
      spec.vendor == "Wyze") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.unknown_beacon_interval_s = 1200;
    b.unknown_beacon_port = 10600;
    b.unknown_beacon_d0 = spec.vendor == "Wyze";  // tshark TPLINK bait
    b.responds_to_broadcast_arp = index % 2 == 0;
    b.ping_gateway_interval_s = 2400;
    b.http_servers = {{.port = 80,
                       .server_banner = spec.vendor == "Wansview"
                                            ? "thttpd/2.25b"
                                            : "GoAhead-Webs"}};
    return b;
  }

  if (spec.vendor == "Arlo" || spec.vendor == "Blink") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.eapol_interval_s = spec.model == "Base Station" ? 0 : 3600;
    b.ping_gateway_interval_s = 1800;
    b.http_servers = {{.port = 80, .server_banner = "arlo-httpd"}};
    if (spec.model == "Base Station") b.use_dhcp = false;  // static infra
    b.responds_to_broadcast_arp = false;  // battery cameras stay quiet
    b.unknown_beacon_interval_s = 7200;
    b.unknown_beacon_port = 3478;
    return b;
  }

  if (spec.vendor == "GE" ) {
    // §5.1: GE Microwave obfuscates hostnames with random bytes.
    b.hostname_policy = HostnamePolicy::kRandomized;
    b.eapol_interval_s = 0;
    b.unknown_beacon_interval_s = 7200;
    b.unknown_beacon_port = 4500;
    return b;
  }

  if (spec.vendor == "TiVo") {
    DeviceBehavior tivo = google_device(spec, index);  // Android TV based
    tivo.hostname_policy = HostnamePolicy::kRandomized;  // obfuscated names
    tivo.display_name.clear();
    tivo.eapol_interval_s = 0;
    tivo.ssdp_respond = false;
    return tivo;
  }

  if (spec.vendor == "Meta") {
    b.hostname_policy = HostnamePolicy::kModel;
    b.ipv6 = true;
    b.icmpv6_interval_s = 1200;
    b.mdns_query_interval_s = 120;
    b.mdns_query_types = {"_airplay._tcp.local"};
    b.ping_gateway_interval_s = 900;
    return b;
  }

  if (spec.vendor == "Aqara") {
    b.hostname_policy = HostnamePolicy::kVendorPartialMac;
    b.mdns_services = {{.service_type = "_aqara._tcp.local",
                        .instance_pattern = "{MODEL}-{MACTAIL}",
                        .port = 443,
                        .txt_patterns = {}}};
    b.ipv6 = true;
    return b;
  }

  if (spec.vendor == "Meross" || spec.vendor == "Sengled" ||
      spec.vendor == "SwitchBot" || spec.vendor == "MagicHome" ||
      spec.vendor == "Wiz" || spec.vendor == "Yeelight" ||
      spec.vendor == "IKEA") {
    b.hostname_policy = index % 3 == 0 ? HostnamePolicy::kNone
                                       : HostnamePolicy::kVendorPartialMac;
    b.dhcp_vendor_class = kDhcpClients[index % 16];
    b.eapol_interval_s = spec.vendor == "IKEA" || spec.vendor == "Sengled"
                             ? 0
                             : 3600;
    b.ping_gateway_interval_s = index % 2 == 0 ? 1800 : 0;
    b.unknown_beacon_interval_s = 1800;
    b.unknown_beacon_port = static_cast<std::uint16_t>(20000 + index * 13);
    b.responds_to_broadcast_arp = index % 2 == 0;
    if (spec.vendor == "SwitchBot" || spec.vendor == "IKEA") {
      b.dns_server = true;  // hub-local resolvers (cache-snooping prone)
      b.dns_banner = "dnsmasq-2.52";
    }
    if (spec.vendor == "IKEA" || spec.vendor == "Sengled")
      b.use_dhcp = false;  // statically configured hubs
    if (spec.vendor == "Yeelight") {
      // Yeelight speaks an SSDP-like discovery on 1982; modeled as real
      // SSDP responder here.
      b.ssdp_respond = true;
      b.ssdp_description = true;
      b.ssdp_server = "POSIX UPnP/1.0 YGLC/1";
    }
    return b;
  }

  // Generic IoT / appliances / remaining: quiet DHCP+ARP devices, half of
  // which never answer broadcast sweeps and some with no hostname at all.
  if (spec.vendor == "Smarter" || spec.vendor == "Xiaomi" ||
      spec.vendor == "Keyco")
    b.use_dhcp = false;  // statically configured appliances
  if (spec.vendor == "Withings") {
    b.ipv6 = true;
    b.icmpv6_interval_s = 3600;
  }
  b.hostname_policy =
      index % 3 == 0 ? HostnamePolicy::kNone : HostnamePolicy::kModel;
  if (index % 2 == 0) b.dhcp_vendor_class = kDhcpClients[index % 16];
  b.eapol_interval_s = index % 4 == 0 ? 0 : 7200;
  b.ping_gateway_interval_s = index % 3 == 0 ? 0 : 3600;
  b.responds_to_broadcast_arp = index % 2 == 0;
  b.arp_public_ip_probe = index % 11 == 0;  // the six public-IP probers
  if (index % 2 == 1) {
    b.unknown_beacon_interval_s = 3600;
    b.unknown_beacon_port = static_cast<std::uint16_t>(30000 + index * 7);
  }
  return b;
}

}  // namespace

DeviceBehavior behavior_for(const DeviceSpec& spec, std::size_t index) {
  DeviceBehavior b = behavior_for_unadorned(spec, index);
  // Roughly half the fleet exposes extra vendor services (the §4.2 port
  // tail); quiet/battery devices do not.
  if (b.responds_to_broadcast_arp && index % 2 == 0) add_debug_ports(b, index);
  return b;
}

}  // namespace roomnet
