#include "testbed/lab.hpp"

#include <map>

#include "proto/http.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"

namespace roomnet {

namespace {
void strip_identifier_placeholders(std::string& pattern) {
  for (const char* placeholder : {"{MAC}", "{MACPLAIN}", "{MACTAIL}", "{UUID}"}) {
    std::size_t pos;
    while ((pos = pattern.find(placeholder)) != std::string::npos)
      pattern.replace(pos, std::string(placeholder).size(), "dev");
  }
}
}  // namespace

/// §7 "data exposure minimization / ID randomization" applied fleet-wide.
void Lab::apply_privacy_hardening(DeviceBehavior& behavior) {
  behavior.hostname_policy = HostnamePolicy::kRandomized;
  behavior.mdns_hostname_policy = HostnamePolicy::kRandomized;
  behavior.display_name.clear();
  behavior.upnp_serial_is_mac = false;
  for (auto& service : behavior.mdns_services) {
    strip_identifier_placeholders(service.instance_pattern);
    for (auto& txt : service.txt_patterns) strip_identifier_placeholders(txt);
  }
}

Lab::Lab(LabConfig config)
    : config_(config), rng_(config.seed), net_(loop_) {
  if (config_.record_frames) capture_.attach(net_);
  router_ = std::make_unique<Router>(
      net_, MacAddress::from_u64(0x02a0ff000001ull), config_.router_ip);

  const auto& registry = OuiRegistry::builtin();
  std::map<std::string, int> per_vendor_index;
  std::size_t index = 0;
  for (const auto& spec : moniotr_catalog()) {
    const std::uint32_t oui =
        registry.oui_of(spec.vendor).value_or(0x02a0fe);
    const int unit = per_vendor_index[spec.vendor]++;
    const MacAddress mac = MacAddress::from_u64(
        (static_cast<std::uint64_t>(oui) << 24) | (0x100001u + unit));
    DeviceBehavior behavior = behavior_for(spec, index);
    if (config_.privacy_hardening) apply_privacy_hardening(behavior);
    devices_.push_back(std::make_unique<TestbedDevice>(
        net_, spec, std::move(behavior), mac, rng_));
    ++index;
  }

  // Statically configured devices get addresses above the DHCP pool.
  std::uint32_t next_static = 200;
  for (auto& device : devices_) {
    if (device->behavior().use_dhcp) continue;
    device->host().set_static_ip(
        Ipv4Address((config_.router_ip.value() & 0xffffff00) | next_static++));
  }

  // Wire platform clusters (Figure 4's hub-and-spoke shape). The
  // coordinator is the first TLS-capable device of the platform OWNER's
  // vendor (HomeKit coordinates through an Apple device, not a Hue hub),
  // falling back to any TLS-capable member, then the first member.
  const auto platform_owner = [](Platform platform) -> std::string {
    switch (platform) {
      case Platform::kAlexa: return "Amazon";
      case Platform::kGoogleHome: return "Google";
      case Platform::kHomeKit: return "Apple";
      case Platform::kTpLink: return "TP-Link";
      case Platform::kTuya: return "Tuya";
      case Platform::kSmartThings: return "SmartThings";
      case Platform::kNone: return "";
    }
    return "";
  };
  std::map<Platform, TestbedDevice*> coordinators;
  for (auto& device : devices_) {
    const Platform platform = device->spec().platform;
    if (platform == Platform::kNone) continue;
    auto [it, inserted] = coordinators.try_emplace(platform, device.get());
    if (inserted) continue;
    const bool current_owner_tls =
        it->second->spec().vendor == platform_owner(platform) &&
        it->second->behavior().tls_server.has_value();
    if (current_owner_tls) continue;
    const bool candidate_owner_tls =
        device->spec().vendor == platform_owner(platform) &&
        device->behavior().tls_server.has_value();
    const bool candidate_better_tls = device->behavior().tls_server &&
                                      !it->second->behavior().tls_server;
    if (candidate_owner_tls || candidate_better_tls) it->second = device.get();
  }
  for (auto& device : devices_) {
    const Platform platform = device->spec().platform;
    if (platform == Platform::kNone) continue;
    TestbedDevice* coordinator = coordinators.at(platform);
    if (coordinator != device.get()) device->set_cluster_coordinator(coordinator);
  }

  pixel_ = std::make_unique<Host>(
      net_, MacAddress::from_u64(0x02a0fd000001ull), "pixel-3");
  iphone_ = std::make_unique<Host>(
      net_, MacAddress::from_u64(0x02a0fd000002ull), "iphone-7");
}

TestbedDevice* Lab::find(std::string_view needle) {
  for (auto& device : devices_) {
    const std::string full = device->spec().vendor + " " + device->spec().model;
    if (full.find(needle) != std::string::npos) return device.get();
  }
  return nullptr;
}

void Lab::start_all() {
  for (auto& device : devices_) {
    const double offset = rng_.uniform() * config_.boot_window_s;
    loop_.schedule_in(SimTime::from_seconds(offset),
                      [d = device.get()] { d->start(); });
  }
  pixel_->start_dhcp("Pixel-3", "android-dhcp-9", {1, 3, 6, 15, 26, 28, 51});
  iphone_->start_dhcp("iPhone", "", {1, 121, 3, 6, 15, 119, 252});
  schedule_interop();
}

void Lab::schedule_interop() {
  // §4.1: inter-manufacturer communication for platform interoperability —
  // voice-assistant platforms control TP-Link gear over TPLINK-SHP, the Hue
  // hub via its REST API, and TVs via their open HTTP control APIs.
  TestbedDevice* echo = find("Echo Spot");
  TestbedDevice* google = find("Nest Hub");
  TestbedDevice* hue = find("Hue Hub");
  TestbedDevice* roku = find("Roku TV");

  const auto http_control = [this](TestbedDevice* from, TestbedDevice* to,
                                   std::uint16_t port, const std::string& path) {
    if (from == nullptr || to == nullptr) return;
    if (!from->host().has_ip() || !to->host().has_ip()) return;
    auto& conn = from->host().connect_tcp(to->host().ip(), port);
    conn.on_established = [path](TcpConnection& c) {
      HttpRequest req;
      req.target = path;
      c.send(encode_http_request(req));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
  };
  const auto tplink_control = [this](TestbedDevice* from, TestbedDevice* to) {
    if (from == nullptr || to == nullptr) return;
    if (!from->host().has_ip() || !to->host().has_ip()) return;
    auto& conn = from->host().connect_tcp(to->host().ip(), kTplinkPort);
    conn.on_established = [](TcpConnection& c) {
      c.send(encode_tplink_tcp(tplink_get_sysinfo_request()));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
  };

  loop_.schedule_periodic(SimTime::from_minutes(8), SimTime::from_minutes(40),
                          [=, this] {
    for (auto& device : devices_) {
      if (device->spec().vendor == "TP-Link")
        tplink_control(echo, device.get());  // Alexa controls Kasa gear
    }
    http_control(echo, hue, 80, "/api/0/lights");        // Alexa -> Hue REST
    http_control(google, hue, 80, "/api/0/lights");      // Google -> Hue REST
    http_control(google, roku, 8060, "/query/device-info");  // Cast -> Roku ECP
  });
}

void Lab::run_for(SimTime duration) {
  loop_.run_until(loop_.now() + duration);
}

void Lab::run_interactions(int count, SimTime spacing) {
  for (int i = 0; i < count; ++i) {
    loop_.schedule_in(SimTime::from_seconds(spacing.seconds() * (i + 1)), [this] {
      auto& device = *devices_[rng_.below(devices_.size())];
      if (device.host().has_ip()) interact_once(device);
    });
  }
  run_for(SimTime::from_seconds(spacing.seconds() * (count + 2)));
}

void Lab::interact_once(TestbedDevice& device) {
  Host& phone = rng_.chance(0.7) ? *pixel_ : *iphone_;
  const DeviceBehavior& behavior = device.behavior();

  if (behavior.ssdp_description && rng_.chance(0.5)) {
    // Companion apps fetch the UPnP description document (whose
    // serialNumber is the MAC on several devices — Table 5).
    auto& conn = phone.connect_tcp(device.host().ip(), 49152);
    conn.on_established = [](TcpConnection& c) {
      HttpRequest req;
      req.target = "/description.xml";
      c.send(encode_http_request(req));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
    return;
  }
  if (behavior.tplink_server) {
    // Companion-app control over TPLINK-SHP TCP (unauthenticated, §5.1).
    auto& conn = phone.connect_tcp(device.host().ip(), kTplinkPort);
    conn.on_established = [](TcpConnection& c) {
      json::Object relay;
      relay.emplace("set_relay_state", [] {
        json::Object st;
        st.emplace("state", 1);
        return json::Value(std::move(st));
      }());
      json::Object root;
      root.emplace("system", json::Value(std::move(relay)));
      c.send(encode_tplink_tcp(json::Value(std::move(root))));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
    return;
  }
  if (behavior.tls_server) {
    auto& conn = phone.connect_tcp(device.host().ip(), behavior.tls_server->port);
    const TlsVersion version = behavior.tls_server->version;
    conn.on_established = [this, version](TcpConnection& c) {
      TlsClientHello hello;
      hello.version = version;
      hello.random = rng_.bytes(32);
      hello.cipher_suites = {0x1301, 0xc02f};
      c.send(encode_client_hello(hello));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
    return;
  }
  if (!behavior.http_servers.empty()) {
    auto& conn =
        phone.connect_tcp(device.host().ip(), behavior.http_servers[0].port);
    conn.on_established = [](TcpConnection& c) {
      HttpRequest req;
      req.target = "/";
      req.headers.add("User-Agent", "CompanionApp/1.0 Android/9");
      c.send(encode_http_request(req));
    };
    conn.on_data = [](TcpConnection& c, BytesView) { c.close(); };
    return;
  }
  // Default: a unicast UDP poke on the device's beacon port (wakes custom
  // protocols) or a ping.
  if (behavior.unknown_beacon_port != 0) {
    phone.send_udp(device.host().ip(), phone.ephemeral_port(),
                   behavior.unknown_beacon_port, rng_.bytes(16));
  } else {
    phone.send_icmp_echo(device.host().ip());
  }
}

}  // namespace roomnet
