#include "prof/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "proto/json.hpp"

namespace roomnet::prof {

namespace {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void stage_fields_json(std::string& out, const StageProfile& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"wall_us\": %" PRId64 ", \"user_us\": %" PRId64
      ", \"sys_us\": %" PRId64 ", \"minor_faults\": %" PRId64
      ", \"major_faults\": %" PRId64 ", \"rss_delta_kb\": %" PRId64
      ", \"rss_kb\": %" PRId64 ", \"peak_rss_kb\": %" PRId64
      ", \"arena_allocs\": %" PRIu64 ", \"arena_bytes\": %" PRIu64
      ", \"pool_tasks\": %" PRIu64 ", \"heap_allocs\": %" PRIu64
      ", \"heap_bytes\": %" PRIu64 ", \"heap_peak_live_bytes\": %" PRId64,
      s.wall_us, s.user_us, s.sys_us, s.minor_faults, s.major_faults,
      s.rss_delta_kb, s.rss_kb, s.peak_rss_kb, s.arena_allocs, s.arena_bytes,
      s.pool_tasks, s.heap_allocs, s.heap_bytes, s.heap_peak_live_bytes);
  out += buf;
}

std::int64_t get_i64(const json::Value& obj, std::string_view key,
                     bool& ok) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    ok = false;
    return 0;
  }
  return static_cast<std::int64_t>(v->as_number());
}

std::uint64_t get_u64(const json::Value& obj, std::string_view key,
                      bool& ok) {
  return static_cast<std::uint64_t>(get_i64(obj, key, ok));
}

bool parse_stage(const json::Value& obj, StageProfile& s) {
  const json::Value* name = obj.find("name");
  if (name == nullptr || !name->is_string()) return false;
  s.name = name->as_string();
  bool ok = true;
  s.wall_us = get_i64(obj, "wall_us", ok);
  s.user_us = get_i64(obj, "user_us", ok);
  s.sys_us = get_i64(obj, "sys_us", ok);
  s.minor_faults = get_i64(obj, "minor_faults", ok);
  s.major_faults = get_i64(obj, "major_faults", ok);
  s.rss_delta_kb = get_i64(obj, "rss_delta_kb", ok);
  s.rss_kb = get_i64(obj, "rss_kb", ok);
  s.peak_rss_kb = get_i64(obj, "peak_rss_kb", ok);
  s.arena_allocs = get_u64(obj, "arena_allocs", ok);
  s.arena_bytes = get_u64(obj, "arena_bytes", ok);
  s.pool_tasks = get_u64(obj, "pool_tasks", ok);
  s.heap_allocs = get_u64(obj, "heap_allocs", ok);
  s.heap_bytes = get_u64(obj, "heap_bytes", ok);
  s.heap_peak_live_bytes = get_i64(obj, "heap_peak_live_bytes", ok);
  return ok;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0)
    std::snprintf(buf, sizeof(buf), "%.1fMiB", bytes / (1024.0 * 1024.0));
  else if (bytes >= 1024.0)
    std::snprintf(buf, sizeof(buf), "%.1fKiB", bytes / 1024.0);
  else
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  return buf;
}

}  // namespace

std::string to_json(const ProfReport& report) {
  std::string out = "{\n";
  out += "  \"schema\": " + std::to_string(report.schema) + ",\n";
  out += "  \"tool\": \"" + escape_json(report.tool) + "\",\n";
  out += "  \"compiler\": \"" + escape_json(report.compiler) + "\",\n";
  out += std::string("  \"profile_heap\": ") +
         (report.profile_heap ? "true" : "false") + ",\n";
  out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
  out += "  \"hardware_threads\": " + std::to_string(report.hardware_threads) +
         ",\n";
  out += "  \"page_size\": " + std::to_string(report.page_size) + ",\n";
  out += "  \"stages\": [";
  bool first = true;
  for (const StageProfile& s : report.stages) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": \"" + escape_json(s.name) + "\", ";
    stage_fields_json(out, s);
    out += "}";
  }
  out += report.stages.empty() ? "],\n" : "\n  ],\n";
  out += "  \"totals\": {\"name\": \"" + escape_json(report.totals.name) +
         "\", ";
  stage_fields_json(out, report.totals);
  out += "}\n}\n";
  return out;
}

std::optional<ProfReport> parse_report(std::string_view text) {
  const std::optional<json::Value> doc = json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;

  ProfReport report;
  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_number()) return std::nullopt;
  report.schema = static_cast<int>(schema->as_number());
  const json::Value* tool = doc->find("tool");
  if (tool == nullptr || !tool->is_string()) return std::nullopt;
  report.tool = tool->as_string();
  if (const json::Value* compiler = doc->find("compiler");
      compiler != nullptr && compiler->is_string())
    report.compiler = compiler->as_string();
  if (const json::Value* heap = doc->find("profile_heap");
      heap != nullptr && heap->is_bool())
    report.profile_heap = heap->as_bool();
  bool ok = true;
  report.threads = static_cast<int>(get_i64(*doc, "threads", ok));
  report.hardware_threads = get_i64(*doc, "hardware_threads", ok);
  report.page_size = get_i64(*doc, "page_size", ok);
  if (!ok) return std::nullopt;

  const json::Value* stages = doc->find("stages");
  if (stages == nullptr || !stages->is_array()) return std::nullopt;
  for (const json::Value& entry : stages->as_array()) {
    StageProfile s;
    if (!entry.is_object() || !parse_stage(entry, s)) return std::nullopt;
    report.stages.push_back(std::move(s));
  }
  const json::Value* totals = doc->find("totals");
  if (totals == nullptr || !totals->is_object() ||
      !parse_stage(*totals, report.totals))
    return std::nullopt;
  return report;
}

std::optional<ProfReport> load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_report(buffer.str());
}

std::string deterministic_fingerprint(const ProfReport& report) {
  std::string out;
  char buf[160];
  for (const StageProfile& s : report.stages) {
    std::snprintf(buf, sizeof(buf),
                  " arena_allocs=%" PRIu64 " arena_bytes=%" PRIu64 "\n",
                  s.arena_allocs, s.arena_bytes);
    out += "stage=" + s.name + buf;
  }
  return out;
}

ProfDiff diff_reports(const ProfReport& current, const ProfReport& baseline,
                      const DiffThresholds& thresholds) {
  ProfDiff diff;
  char buf[256];

  const bool same_hardware =
      current.hardware_threads == baseline.hardware_threads;
  const bool heap_comparable = current.profile_heap && baseline.profile_heap &&
                               current.compiler == baseline.compiler;
  if (!same_hardware) {
    std::snprintf(buf, sizeof(buf),
                  "SKIP time+rss gates: hardware_threads %" PRId64
                  " vs baseline %" PRId64 " — wall/RSS comparison would be "
                  "noise",
                  current.hardware_threads, baseline.hardware_threads);
    diff.lines.emplace_back(buf);
  }
  if (!heap_comparable) {
    diff.lines.emplace_back(
        (current.profile_heap && baseline.profile_heap)
            ? "SKIP heap gates: reports built by different compilers"
            : "SKIP heap gates: heap hooks off (build with "
              "-DROOMNET_PROFILE=ON to gate heap metrics)");
  }

  // Stage lists must agree before per-stage ratios mean anything.
  const std::size_t common =
      std::min(current.stages.size(), baseline.stages.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (current.stages[i].name != baseline.stages[i].name) {
      diff.ok = false;
      diff.stage = current.stages[i].name;
      diff.metric = "stage_list";
      diff.detail = "stage " + std::to_string(i) + " named \"" +
                    current.stages[i].name + "\" vs baseline \"" +
                    baseline.stages[i].name + "\"";
      return diff;
    }
  }
  if (current.stages.size() != baseline.stages.size()) {
    diff.ok = false;
    diff.metric = "stage_list";
    diff.detail = "stage counts differ: " +
                  std::to_string(current.stages.size()) + " vs baseline " +
                  std::to_string(baseline.stages.size());
    return diff;
  }

  struct Gate {
    const char* metric;
    double ratio;
    bool over;
    bool skipped;
    std::string line;
  };

  const auto ratio_gate = [&](const char* metric, double cur, double base,
                              double floor_value, double limit,
                              bool enabled) -> Gate {
    Gate g{metric, 0.0, false, false, {}};
    if (!enabled) {
      g.skipped = true;
      return g;
    }
    if (base < floor_value || base <= 0.0) {
      g.skipped = true;
      ++diff.skipped;
      return g;
    }
    g.ratio = (cur - base) / base;
    g.over = g.ratio > limit;
    ++diff.compared;
    return g;
  };

  const auto check_stage = [&](const StageProfile& cur,
                               const StageProfile& base) -> std::string {
    std::vector<Gate> gates;
    gates.push_back(ratio_gate(
        "wall_us", static_cast<double>(cur.wall_us),
        static_cast<double>(base.wall_us),
        static_cast<double>(thresholds.min_wall_us),
        thresholds.max_time_regression, same_hardware));
    gates.push_back(ratio_gate(
        "arena_allocs", static_cast<double>(cur.arena_allocs),
        static_cast<double>(base.arena_allocs),
        static_cast<double>(thresholds.min_allocs) / 100.0,
        thresholds.max_alloc_regression, true));
    gates.push_back(ratio_gate(
        "arena_bytes", static_cast<double>(cur.arena_bytes),
        static_cast<double>(base.arena_bytes),
        static_cast<double>(thresholds.min_alloc_bytes),
        thresholds.max_alloc_regression, true));
    gates.push_back(ratio_gate(
        "heap_allocs", static_cast<double>(cur.heap_allocs),
        static_cast<double>(base.heap_allocs),
        static_cast<double>(thresholds.min_allocs),
        thresholds.max_alloc_regression, heap_comparable));
    gates.push_back(ratio_gate(
        "heap_bytes", static_cast<double>(cur.heap_bytes),
        static_cast<double>(base.heap_bytes),
        static_cast<double>(thresholds.min_alloc_bytes),
        thresholds.max_alloc_regression, heap_comparable));
    gates.push_back(ratio_gate(
        "peak_rss_kb", static_cast<double>(cur.peak_rss_kb),
        static_cast<double>(base.peak_rss_kb),
        static_cast<double>(thresholds.min_rss_kb),
        thresholds.max_rss_regression, same_hardware));

    for (const Gate& g : gates) {
      if (g.skipped) continue;
      std::snprintf(buf, sizeof(buf),
                    "stage %s: %s %+.1f%% vs baseline (limit +%.0f%%)%s",
                    cur.name.c_str(), g.metric, g.ratio * 100.0,
                    (std::string(g.metric) == "wall_us"
                         ? thresholds.max_time_regression
                         : std::string(g.metric) == "peak_rss_kb"
                               ? thresholds.max_rss_regression
                               : thresholds.max_alloc_regression) *
                        100.0,
                    g.over ? "  REGRESSED" : "");
      diff.lines.emplace_back(buf);
    }
    for (const Gate& g : gates)
      if (g.over) return g.metric;
    return {};
  };

  for (std::size_t i = 0; i < current.stages.size(); ++i) {
    const std::string metric = check_stage(current.stages[i],
                                           baseline.stages[i]);
    if (!metric.empty() && diff.ok) {
      // Keep walking (the lines are a full report) but remember the FIRST
      // regressing stage — the one that introduced the cost.
      diff.ok = false;
      diff.stage = current.stages[i].name;
      diff.metric = metric;
      const StageProfile& cur = current.stages[i];
      const StageProfile& base = baseline.stages[i];
      double cur_v = 0.0;
      double base_v = 0.0;
      std::string shown_cur;
      std::string shown_base;
      if (metric == "wall_us") {
        cur_v = static_cast<double>(cur.wall_us);
        base_v = static_cast<double>(base.wall_us);
        shown_cur = std::to_string(cur.wall_us / 1000) + "ms";
        shown_base = std::to_string(base.wall_us / 1000) + "ms";
      } else if (metric == "arena_allocs") {
        cur_v = static_cast<double>(cur.arena_allocs);
        base_v = static_cast<double>(base.arena_allocs);
        shown_cur = std::to_string(cur.arena_allocs);
        shown_base = std::to_string(base.arena_allocs);
      } else if (metric == "arena_bytes") {
        cur_v = static_cast<double>(cur.arena_bytes);
        base_v = static_cast<double>(base.arena_bytes);
        shown_cur = format_bytes(static_cast<double>(cur.arena_bytes));
        shown_base = format_bytes(static_cast<double>(base.arena_bytes));
      } else if (metric == "heap_allocs") {
        cur_v = static_cast<double>(cur.heap_allocs);
        base_v = static_cast<double>(base.heap_allocs);
        shown_cur = std::to_string(cur.heap_allocs);
        shown_base = std::to_string(base.heap_allocs);
      } else if (metric == "heap_bytes") {
        cur_v = static_cast<double>(cur.heap_bytes);
        base_v = static_cast<double>(base.heap_bytes);
        shown_cur = format_bytes(static_cast<double>(cur.heap_bytes));
        shown_base = format_bytes(static_cast<double>(base.heap_bytes));
      } else {  // peak_rss_kb
        cur_v = static_cast<double>(cur.peak_rss_kb);
        base_v = static_cast<double>(base.peak_rss_kb);
        shown_cur = std::to_string(cur.peak_rss_kb) + "kB";
        shown_base = std::to_string(base.peak_rss_kb) + "kB";
      }
      diff.ratio = base_v > 0.0 ? (cur_v - base_v) / base_v : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "first regressing stage: \"%s\" — %s %s vs baseline %s "
                    "(%+.1f%%)",
                    diff.stage.c_str(), metric.c_str(), shown_cur.c_str(),
                    shown_base.c_str(), diff.ratio * 100.0);
      diff.detail = buf;
    }
  }
  if (diff.ok)
    diff.detail = "no stage regressed past the thresholds (" +
                  std::to_string(diff.compared) + " gates compared, " +
                  std::to_string(diff.skipped) + " under noise floor)";
  return diff;
}

}  // namespace roomnet::prof
