#include "prof/folded.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "prof/counters.hpp"

namespace roomnet::prof {

namespace {

struct Span {
  const telemetry::TraceEvent* event;
  std::uint64_t start;
  std::uint64_t end;
};

std::uint64_t weight_of(const telemetry::TraceEvent& e, FoldedWeight weight) {
  switch (weight) {
    case FoldedWeight::kWallMicros:
      return e.wall_dur_us;
    case FoldedWeight::kAllocBytes:
      // Heap attribution when the global hooks are live, else the explicit
      // arena counters (the only thing that moves with ROOMNET_PROFILE=OFF).
      return heap_hooks_active() ? e.alloc_bytes : e.arena_bytes;
  }
  return 0;
}

/// Frame separators would corrupt the folded format; space separates the
/// stack from its weight.
std::string sanitize_frame(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  return out;
}

}  // namespace

std::string folded_stacks(const telemetry::Tracer& tracer,
                          FoldedWeight weight) {
  const std::vector<telemetry::TraceEvent> events = tracer.snapshot();

  std::map<int, std::string> thread_names;
  for (const auto& [tid, name] : tracer.thread_names())
    thread_names[tid] = sanitize_frame(name);

  // Group complete spans per thread track.
  std::map<int, std::vector<Span>> tracks;
  for (const telemetry::TraceEvent& e : events) {
    if (e.phase != 'X') continue;
    tracks[e.tid].push_back(
        Span{&e, e.wall_start_us, e.wall_start_us + e.wall_dur_us});
  }

  std::map<std::string, std::uint64_t> folded;
  for (auto& [tid, spans] : tracks) {
    // Parents sort before their children: earlier start first, and on equal
    // starts the longer (outer) span first.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       if (a.start != b.start) return a.start < b.start;
                       return a.end > b.end;
                     });

    const std::string root = [&] {
      const auto it = thread_names.find(tid);
      if (it != thread_names.end()) return it->second;
      return "tid-" + std::to_string(tid);
    }();

    struct Open {
      std::string path;
      std::uint64_t end;
      std::int64_t self;  // own weight minus completed children
    };
    std::vector<Open> stack;
    const auto close_top = [&] {
      const Open& top = stack.back();
      if (top.self > 0)
        folded[top.path] += static_cast<std::uint64_t>(top.self);
      stack.pop_back();
    };

    for (const Span& span : spans) {
      // Pop everything that cannot contain this span. Containment needs
      // top.end >= span.end (top.start <= span.start holds by sort order);
      // partial overlaps — possible only when the ring evicted a parent —
      // degrade to siblings instead of corrupting the stack.
      while (!stack.empty() && (stack.back().end <= span.start ||
                                stack.back().end < span.end))
        close_top();
      const std::uint64_t w = weight_of(*span.event, weight);
      if (!stack.empty())
        stack.back().self -= static_cast<std::int64_t>(w);
      const std::string parent =
          stack.empty() ? root : stack.back().path;
      stack.push_back(Open{parent + ";" + sanitize_frame(span.event->name),
                           span.end, static_cast<std::int64_t>(w)});
    }
    while (!stack.empty()) close_top();
  }

  std::string out;
  char buf[32];
  for (const auto& [path, total] : folded) {
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", total);
    out += path;
    out += buf;
  }
  return out;
}

std::size_t write_folded_stacks(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return 0;
  const auto write = [&](const std::string& file, const std::string& content) {
    std::ofstream out(dir + "/" + file, std::ios::binary);
    if (!out) return false;
    out << content;
    return out.good();
  };
  const telemetry::Tracer& tracer = telemetry::Tracer::global();
  std::size_t written = 0;
  written += write("trace.folded",
                   folded_stacks(tracer, FoldedWeight::kWallMicros));
  written += write("alloc.folded",
                   folded_stacks(tracer, FoldedWeight::kAllocBytes));
  return written;
}

}  // namespace roomnet::prof
