#include "prof/profiler.hpp"

#include <thread>
#include <utility>

#include "telemetry/metrics.hpp"

namespace roomnet::prof {

void Profiler::begin_run(int threads) {
  stages_.clear();
  in_stage_ = false;
  threads_ = threads;
  heap_peak_live_max_ = 0;
  run_start_ = ResourceSample::now();
  run_alloc_start_ = snapshot_alloc_counters();
}

void Profiler::begin_stage(std::string name) {
  stage_name_ = std::move(name);
  stage_start_ = ResourceSample::now();
  stage_alloc_start_ = snapshot_alloc_counters();
  // Reset the live-heap high-water to the current level: the mark then
  // reads as "peak live heap DURING this stage", not since process start.
  GlobalAllocCounters& g = global_alloc_counters();
  g.heap_peak_live_bytes.store(
      g.heap_live_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  in_stage_ = true;
}

void Profiler::end_stage() {
  if (!in_stage_) return;
  in_stage_ = false;
  const ResourceDelta d = delta(stage_start_, ResourceSample::now());
  const AllocSnapshot a0 = stage_alloc_start_;
  const AllocSnapshot a1 = snapshot_alloc_counters();

  StageProfile s;
  s.name = std::move(stage_name_);
  s.wall_us = d.wall_us;
  s.user_us = d.user_us;
  s.sys_us = d.sys_us;
  s.minor_faults = d.minor_faults;
  s.major_faults = d.major_faults;
  s.rss_delta_kb = d.rss_delta_kb;
  s.rss_kb = d.rss_kb;
  s.peak_rss_kb = d.peak_rss_kb;
  s.arena_allocs = a1.arena_allocs - a0.arena_allocs;
  s.arena_bytes = a1.arena_bytes - a0.arena_bytes;
  s.pool_tasks = a1.pool_tasks - a0.pool_tasks;
  s.heap_allocs = a1.heap_allocs - a0.heap_allocs;
  s.heap_bytes = a1.heap_bytes - a0.heap_bytes;
  s.heap_peak_live_bytes = a1.heap_peak_live_bytes;
  if (s.heap_peak_live_bytes > heap_peak_live_max_)
    heap_peak_live_max_ = s.heap_peak_live_bytes;

  // Mirror into the registry so the ordinary metrics exporters carry the
  // same per-stage resource picture as perf.json.
  auto& registry = telemetry::Registry::global();
  const telemetry::Labels labels = {{"stage", s.name}};
  registry.gauge("roomnet_prof_stage_wall_us", labels).set(s.wall_us);
  registry.gauge("roomnet_prof_stage_user_us", labels).set(s.user_us);
  registry.gauge("roomnet_prof_stage_sys_us", labels).set(s.sys_us);
  registry.gauge("roomnet_prof_stage_minor_faults", labels)
      .set(s.minor_faults);
  registry.gauge("roomnet_prof_stage_peak_rss_kb", labels)
      .set(s.peak_rss_kb);
  registry.gauge("roomnet_prof_stage_arena_bytes", labels)
      .set(static_cast<std::int64_t>(s.arena_bytes));
  registry.gauge("roomnet_prof_stage_heap_bytes", labels)
      .set(static_cast<std::int64_t>(s.heap_bytes));
  registry.gauge("roomnet_prof_stage_heap_peak_live_bytes", labels)
      .set(s.heap_peak_live_bytes);

  stages_.push_back(std::move(s));
}

ProfReport Profiler::finish() {
  ProfReport report;
  report.compiler = __VERSION__;
  report.profile_heap = heap_hooks_active();
  report.threads = threads_;
  const unsigned hw = std::thread::hardware_concurrency();
  report.hardware_threads = hw == 0 ? 1 : static_cast<std::int64_t>(hw);
  report.page_size = page_size_bytes();
  report.stages = stages_;

  const ResourceDelta d = delta(run_start_, ResourceSample::now());
  const AllocSnapshot a1 = snapshot_alloc_counters();
  StageProfile& t = report.totals;
  t.name = "total";
  t.wall_us = d.wall_us;
  t.user_us = d.user_us;
  t.sys_us = d.sys_us;
  t.minor_faults = d.minor_faults;
  t.major_faults = d.major_faults;
  t.rss_delta_kb = d.rss_delta_kb;
  t.rss_kb = d.rss_kb;
  t.peak_rss_kb = d.peak_rss_kb;
  t.arena_allocs = a1.arena_allocs - run_alloc_start_.arena_allocs;
  t.arena_bytes = a1.arena_bytes - run_alloc_start_.arena_bytes;
  t.pool_tasks = a1.pool_tasks - run_alloc_start_.pool_tasks;
  t.heap_allocs = a1.heap_allocs - run_alloc_start_.heap_allocs;
  t.heap_bytes = a1.heap_bytes - run_alloc_start_.heap_bytes;
  t.heap_peak_live_bytes = heap_peak_live_max_;

  auto& registry = telemetry::Registry::global();
  registry.gauge("roomnet_prof_heap_live_bytes").set(a1.heap_live_bytes);
  registry.gauge("roomnet_prof_run_peak_rss_kb").set(t.peak_rss_kb);
  return report;
}

Profiler& Profiler::global() {
  static Profiler* instance = new Profiler;  // leaked: outlives all users
  return *instance;
}

}  // namespace roomnet::prof
