// roomnet::prof — allocation counter substrate.
//
// This header is deliberately dependency-free (standard <atomic>/<cstdint>
// only, everything inline) so the lowest layers of the stack — FrameStore in
// netcore, ChunkedColumn in capture, the exec TaskPool, the span tracer —
// can count allocations without linking against (or even knowing about) the
// rest of roomnet::prof. Three counter families:
//
//   heap   — every operator new/delete, fed by the global hooks in
//            alloc_hooks.cpp when the build is configured with
//            -DROOMNET_PROFILE=ON; otherwise permanently zero.
//   arena  — chunk reservations by the capture arenas (FrameStore chunks,
//            CaptureStore columns). Always on: these happen on the sim
//            thread in event order, so per-stage deltas are deterministic
//            for a fixed seed at ANY thread count — they form the
//            deterministic core of perf.json.
//   pool   — tasks handed to exec::TaskPool (explicit hook; the queue node
//            + std::function storage is the attributed cost). Always on,
//            but NOT thread-count-invariant (chunk counts scale with the
//            pool), so it is excluded from determinism fingerprints.
//
// Every hook is a handful of relaxed atomic adds plus two thread-local
// increments; with ROOMNET_PROFILE=OFF only the explicit arena/pool call
// sites pay, which keeps the profiler inside the ≤5% overhead budget
// (DESIGN.md §11).
#pragma once

#include <atomic>
#include <cstdint>

namespace roomnet::prof {

/// Process-wide totals, updated with relaxed atomics from any thread.
struct GlobalAllocCounters {
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> heap_bytes{0};
  std::atomic<std::uint64_t> heap_frees{0};
  std::atomic<std::uint64_t> heap_freed_bytes{0};
  /// Live heap bytes (allocs minus frees) and its high-water mark. The
  /// profiler resets the high-water to the current live level at each stage
  /// boundary, so the mark reads as "peak live during this stage".
  std::atomic<std::int64_t> heap_live_bytes{0};
  std::atomic<std::int64_t> heap_peak_live_bytes{0};

  std::atomic<std::uint64_t> arena_allocs{0};
  std::atomic<std::uint64_t> arena_bytes{0};

  std::atomic<std::uint64_t> pool_tasks{0};
};

inline GlobalAllocCounters& global_alloc_counters() {
  static GlobalAllocCounters counters;  // constant-initialized atomics
  return counters;
}

/// Per-thread running totals, read by ScopedSpan (per-span attribution) and
/// by the TaskPool (per-task attribution). Monotone; consumers take deltas.
struct ThreadAllocCounters {
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t arena_bytes = 0;
};

inline thread_local ThreadAllocCounters t_alloc_counters;  // NOLINT

/// Point-in-time copy of the global counters (relaxed loads).
struct AllocSnapshot {
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t heap_frees = 0;
  std::uint64_t heap_freed_bytes = 0;
  std::int64_t heap_live_bytes = 0;
  std::int64_t heap_peak_live_bytes = 0;
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t pool_tasks = 0;
};

inline AllocSnapshot snapshot_alloc_counters() {
  GlobalAllocCounters& g = global_alloc_counters();
  AllocSnapshot s;
  s.heap_allocs = g.heap_allocs.load(std::memory_order_relaxed);
  s.heap_bytes = g.heap_bytes.load(std::memory_order_relaxed);
  s.heap_frees = g.heap_frees.load(std::memory_order_relaxed);
  s.heap_freed_bytes = g.heap_freed_bytes.load(std::memory_order_relaxed);
  s.heap_live_bytes = g.heap_live_bytes.load(std::memory_order_relaxed);
  s.heap_peak_live_bytes =
      g.heap_peak_live_bytes.load(std::memory_order_relaxed);
  s.arena_allocs = g.arena_allocs.load(std::memory_order_relaxed);
  s.arena_bytes = g.arena_bytes.load(std::memory_order_relaxed);
  s.pool_tasks = g.pool_tasks.load(std::memory_order_relaxed);
  return s;
}

/// Called by the operator new hooks (alloc_hooks.cpp). `bytes` is the usable
/// size of the block where the allocator reports one, else the request size.
inline void note_heap_alloc(std::size_t bytes) noexcept {
  GlobalAllocCounters& g = global_alloc_counters();
  g.heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g.heap_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::int64_t live =
      g.heap_live_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                                  std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t peak = g.heap_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g.heap_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  t_alloc_counters.heap_allocs += 1;
  t_alloc_counters.heap_bytes += bytes;
}

inline void note_heap_free(std::size_t bytes) noexcept {
  GlobalAllocCounters& g = global_alloc_counters();
  g.heap_frees.fetch_add(1, std::memory_order_relaxed);
  g.heap_freed_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g.heap_live_bytes.fetch_sub(static_cast<std::int64_t>(bytes),
                              std::memory_order_relaxed);
}

/// Explicit arena hook: one chunk reservation of `bytes` by a capture arena.
inline void note_arena_alloc(std::size_t bytes) noexcept {
  GlobalAllocCounters& g = global_alloc_counters();
  g.arena_allocs.fetch_add(1, std::memory_order_relaxed);
  g.arena_bytes.fetch_add(bytes, std::memory_order_relaxed);
  t_alloc_counters.arena_bytes += bytes;
}

/// Explicit pool hook: one task handed to an exec::TaskPool.
inline void note_pool_task() noexcept {
  global_alloc_counters().pool_tasks.fetch_add(1, std::memory_order_relaxed);
}

/// True when this binary was built with -DROOMNET_PROFILE=ON, i.e. the
/// global operator new/delete hooks are live and heap_* counters move.
/// Defined in alloc_hooks.cpp — calling it also forces that translation
/// unit (and with it the operator new overrides) into the link.
[[nodiscard]] bool heap_hooks_active();

}  // namespace roomnet::prof
