#include "prof/rusage.hpp"

#include <chrono>
#include <cstdio>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define ROOMNET_HAVE_GETRUSAGE 1
#endif
#if __has_include(<unistd.h>)
#include <unistd.h>
#define ROOMNET_HAVE_UNISTD 1
#endif

namespace roomnet::prof {

namespace {

std::int64_t steady_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// VmRSS in kB from /proc/self/statm (field 2, in pages). Cheaper to parse
/// than /proc/self/status and always two integers deep.
std::int64_t statm_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long vm_pages = 0;
  long long rss_pages = 0;
  const int fields = std::fscanf(f, "%lld %lld", &vm_pages, &rss_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  return rss_pages * page_size_bytes() / 1024;
}

}  // namespace

std::int64_t page_size_bytes() {
#ifdef ROOMNET_HAVE_UNISTD
  static const std::int64_t page = sysconf(_SC_PAGESIZE);
  return page > 0 ? page : 0;
#else
  return 0;
#endif
}

ResourceSample ResourceSample::now() {
  ResourceSample s;
  s.wall_us = steady_us();
#ifdef ROOMNET_HAVE_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    s.user_us = static_cast<std::int64_t>(usage.ru_utime.tv_sec) * 1000000 +
                usage.ru_utime.tv_usec;
    s.sys_us = static_cast<std::int64_t>(usage.ru_stime.tv_sec) * 1000000 +
               usage.ru_stime.tv_usec;
    s.minor_faults = usage.ru_minflt;
    s.major_faults = usage.ru_majflt;
    s.peak_rss_kb = usage.ru_maxrss;  // kilobytes on Linux
  }
#endif
  s.rss_kb = statm_rss_kb();
  return s;
}

ResourceDelta delta(const ResourceSample& a, const ResourceSample& b) {
  ResourceDelta d;
  d.wall_us = b.wall_us - a.wall_us;
  d.user_us = b.user_us - a.user_us;
  d.sys_us = b.sys_us - a.sys_us;
  d.minor_faults = b.minor_faults - a.minor_faults;
  d.major_faults = b.major_faults - a.major_faults;
  d.rss_delta_kb = b.rss_kb - a.rss_kb;
  d.rss_kb = b.rss_kb;
  d.peak_rss_kb = b.peak_rss_kb;
  return d;
}

}  // namespace roomnet::prof
