// Folded-stack export: converts the span tracer's nested spans into the
// `perf-folded` text format — one line per unique span stack,
// `thread;outer;inner <weight>` — consumable by flamegraph.pl, speedscope,
// or inferno without any adapter. Two weightings:
//
//   kWallMicros — self wall time per span (exclusive: children subtracted),
//                 the classic CPU flamegraph;
//   kAllocBytes — bytes allocated while the span was open on its thread
//                 (heap bytes when the ROOMNET_PROFILE heap hooks are live,
//                 else the explicit arena counters), an allocation
//                 flamegraph showing *which stage* pays for memory.
//
// Nesting is reconstructed per thread track from span intervals (a child's
// [start, end) lies inside its parent's), which is exactly the structure
// ScopedSpan's scoping guarantees. Output lines are sorted, so two
// identical runs fold to byte-identical files.
#pragma once

#include <string>

#include "telemetry/trace.hpp"

namespace roomnet::prof {

enum class FoldedWeight {
  kWallMicros,
  kAllocBytes,
};

/// Folds the tracer's current snapshot. Empty string when no complete spans
/// were recorded.
[[nodiscard]] std::string folded_stacks(const telemetry::Tracer& tracer,
                                        FoldedWeight weight);

/// Writes `trace.folded` (wall µs) and `alloc.folded` (allocated bytes)
/// into `dir` from the global tracer. Returns the number of files written.
std::size_t write_folded_stacks(const std::string& dir);

}  // namespace roomnet::prof
