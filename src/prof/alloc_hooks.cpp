// Global operator new/delete hooks, compiled to live replacements only when
// the build is configured with -DROOMNET_PROFILE=ON (which defines
// ROOMNET_PROFILE_HEAP). With the option off this file contributes just
// heap_hooks_active() == false, and allocation goes straight to the
// system allocator — zero overhead, honoring the ≤5% OFF budget.
//
// The hooks count every allocation into prof::global_alloc_counters() and
// the calling thread's prof::t_alloc_counters. Bytes are measured with
// malloc_usable_size() where glibc provides it, so alloc and free sides
// agree and live-byte accounting stays balanced; elsewhere frees through
// the unsized operator delete are counted with zero bytes.
//
// Do not combine with AddressSanitizer leak checking: ASan's allocator
// interceptors and these overrides both want the global new/delete slots.
// scripts/check.sh never enables both.
#include "prof/counters.hpp"

#ifdef ROOMNET_PROFILE_HEAP

#include <cstddef>
#include <cstdlib>
#include <new>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define ROOMNET_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace {

std::size_t block_size(void* p, std::size_t fallback) noexcept {
#ifdef ROOMNET_HAVE_MALLOC_USABLE_SIZE
  if (p != nullptr) return malloc_usable_size(p);
  return fallback;
#else
  (void)p;
  return fallback;
#endif
}

void* counted_alloc(std::size_t n, std::size_t align) {
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t rounded = (n + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(n == 0 ? 1 : n);
  }
  if (p != nullptr) roomnet::prof::note_heap_alloc(block_size(p, n));
  return p;
}

void counted_free(void* p, std::size_t size_hint) noexcept {
  if (p == nullptr) return;
  roomnet::prof::note_heap_free(block_size(p, size_hint));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return operator new(n); }

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_alloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  return operator new(n, align);
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n, 0);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n, 0);
}

void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p, 0); }
void operator delete[](void* p) noexcept { counted_free(p, 0); }
void operator delete(void* p, std::size_t n) noexcept { counted_free(p, n); }
void operator delete[](void* p, std::size_t n) noexcept { counted_free(p, n); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p, 0); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p, 0);
}
void operator delete(void* p, std::size_t n, std::align_val_t) noexcept {
  counted_free(p, n);
}
void operator delete[](void* p, std::size_t n, std::align_val_t) noexcept {
  counted_free(p, n);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p, 0);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p, 0);
}

namespace roomnet::prof {
bool heap_hooks_active() { return true; }
}  // namespace roomnet::prof

#else  // !ROOMNET_PROFILE_HEAP

namespace roomnet::prof {
bool heap_hooks_active() { return false; }
}  // namespace roomnet::prof

#endif
