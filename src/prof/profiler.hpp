// The per-stage resource profiler. One Profiler instance follows a pipeline
// run: begin_run() snapshots the OS resource and allocation baselines,
// begin_stage()/end_stage() bracket each stage with getrusage +
// /proc/self/statm + allocation-counter deltas, and finish() folds the
// accumulated StageProfiles into a ProfReport (perf.json) keyed to the SAME
// stage names the RunManifest hashes — so "the first divergent stage" from
// roomnet-audit and "the first regressing stage" from roomnet-prof name the
// same place in the pipeline.
//
// Sampling happens ONLY at stage boundaries (a handful of syscalls per
// stage), never per event or per packet: with ROOMNET_PROFILE=OFF the only
// always-on cost anywhere is the explicit arena/pool counter hooks — a few
// relaxed atomic adds per 256KiB chunk — which is how the profiler stays
// inside the ≤5% overhead budget while still making every run self-
// measuring.
//
// Each end_stage() also publishes the stage's numbers to the telemetry
// registry under the roomnet_prof_* families, so metrics.prom / metrics.json
// carry resource data without anyone parsing perf.json.
#pragma once

#include <string>
#include <vector>

#include "prof/counters.hpp"
#include "prof/report.hpp"
#include "prof/rusage.hpp"

namespace roomnet::prof {

class Profiler {
 public:
  /// Clears prior stages and snapshots the run baselines. `threads` is the
  /// resolved pipeline parallelism recorded into the report.
  void begin_run(int threads);

  /// Brackets one named stage. Stages are serial (pipeline stages run on
  /// the driving thread); nested begin_stage calls are a caller bug.
  void begin_stage(std::string name);
  void end_stage();
  [[nodiscard]] bool in_stage() const { return in_stage_; }

  /// Finalizes totals and returns the report. The profiler is reusable:
  /// the next begin_run() starts fresh.
  [[nodiscard]] ProfReport finish();

  /// The process-wide profiler the pipeline drives. Like the telemetry
  /// registry, it assumes one pipeline run at a time.
  static Profiler& global();

 private:
  bool in_stage_ = false;
  std::string stage_name_;
  ResourceSample run_start_{};
  ResourceSample stage_start_{};
  AllocSnapshot run_alloc_start_{};
  AllocSnapshot stage_alloc_start_{};
  int threads_ = 0;
  std::int64_t heap_peak_live_max_ = 0;
  std::vector<StageProfile> stages_;
};

/// RAII stage bracket for the pipeline's stage scopes.
class StageScope {
 public:
  explicit StageScope(std::string name,
                      Profiler& profiler = Profiler::global())
      : profiler_(&profiler) {
    profiler_->begin_stage(std::move(name));
  }
  ~StageScope() { profiler_->end_stage(); }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace roomnet::prof
