// OS resource sampling for the profiler: one ResourceSample is a cumulative
// point-in-time reading of the process's CPU time, fault counts, and
// resident set, taken from getrusage(RUSAGE_SELF) plus /proc/self/statm.
// Per-stage costs are deltas between two samples. Everything here is
// host-dependent by nature (DESIGN.md §11): none of it feeds determinism
// hashes, and on platforms without /proc the RSS fields read as zero.
#pragma once

#include <cstdint>

namespace roomnet::prof {

struct ResourceSample {
  std::int64_t wall_us = 0;   // steady clock, since process-local epoch
  std::int64_t user_us = 0;   // cumulative user CPU (all threads)
  std::int64_t sys_us = 0;    // cumulative system CPU
  std::int64_t minor_faults = 0;  // cumulative, no I/O (ru_minflt)
  std::int64_t major_faults = 0;  // cumulative, required I/O (ru_majflt)
  std::int64_t rss_kb = 0;        // current resident set (statm, kB)
  std::int64_t peak_rss_kb = 0;   // high-water resident set (ru_maxrss, kB)

  [[nodiscard]] static ResourceSample now();
};

/// b - a for the cumulative fields; rss/peak_rss carry b's absolute values
/// (a delta of a high-water mark is meaningless).
struct ResourceDelta {
  std::int64_t wall_us = 0;
  std::int64_t user_us = 0;
  std::int64_t sys_us = 0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t rss_delta_kb = 0;  // signed: stages can shrink the RSS
  std::int64_t rss_kb = 0;        // absolute, at the end sample
  std::int64_t peak_rss_kb = 0;   // absolute, at the end sample
};

[[nodiscard]] ResourceDelta delta(const ResourceSample& a,
                                  const ResourceSample& b);

/// sysconf(_SC_PAGESIZE) (0 where unavailable) — perf.json records it so a
/// report names the units its fault counts were paid in.
[[nodiscard]] std::int64_t page_size_bytes();

}  // namespace roomnet::prof
