// perf.json: the resource twin of manifest.json. One ProfReport records,
// for every pipeline stage the run manifest names, where the wall/user/sys
// time went, how many page faults and resident bytes it cost, and what it
// allocated — split into the deterministic core (stage set + arena counters,
// identical across thread counts and hosts for a fixed seed) and the
// host-dependent remainder (timings, RSS, faults, heap counters). The
// roomnet-prof CLI diffs two reports and names the FIRST regressing stage,
// exactly as roomnet-audit names the first divergent one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace roomnet::prof {

struct StageProfile {
  std::string name;
  // -- host-dependent: time ---------------------------------------------
  std::int64_t wall_us = 0;
  std::int64_t user_us = 0;
  std::int64_t sys_us = 0;
  // -- host-dependent: memory pressure ----------------------------------
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t rss_delta_kb = 0;  // VmRSS movement across the stage
  std::int64_t rss_kb = 0;        // VmRSS at stage end
  std::int64_t peak_rss_kb = 0;   // process high-water at stage end
  // -- deterministic core: arena accounting (sim-thread, event order) ----
  std::uint64_t arena_allocs = 0;  // chunk reservations
  std::uint64_t arena_bytes = 0;   // bytes reserved by those chunks
  // -- host/thread-count dependent: pool + heap --------------------------
  std::uint64_t pool_tasks = 0;  // tasks submitted to exec::TaskPool
  std::uint64_t heap_allocs = 0;  // operator new calls (ROOMNET_PROFILE=ON)
  std::uint64_t heap_bytes = 0;
  std::int64_t heap_peak_live_bytes = 0;  // peak live heap during the stage
};

struct ProfReport {
  int schema = 1;
  std::string tool = "roomnet-prof";
  std::string compiler;     // __VERSION__ at build time
  bool profile_heap = false;  // heap hooks compiled in (ROOMNET_PROFILE=ON)
  int threads = 0;
  std::int64_t hardware_threads = 0;
  std::int64_t page_size = 0;
  std::vector<StageProfile> stages;
  /// Whole-run totals: cumulative fields summed, rss/peak absolute at run
  /// end, heap_peak_live the max over stages.
  StageProfile totals;  // name == "total"
};

/// Canonical JSON (fixed field order, no whitespace variance).
[[nodiscard]] std::string to_json(const ProfReport& report);
/// Strict parse of to_json() output; nullopt on malformed input.
[[nodiscard]] std::optional<ProfReport> parse_report(std::string_view text);
/// Reads and parses a perf.json file.
[[nodiscard]] std::optional<ProfReport> load_report(const std::string& path);

/// The deterministic fields only — stage names in order plus arena
/// allocation counters. Two runs of one seed must produce byte-identical
/// fingerprints at every thread count; timings and heap fields are excluded
/// by contract (DESIGN.md §11).
[[nodiscard]] std::string deterministic_fingerprint(const ProfReport& report);

/// Regression gates for diff_reports. A ratio gate only fires when the
/// baseline side also clears the matching noise floor — a stage that took
/// 2ms and now takes 3ms is not a finding.
struct DiffThresholds {
  double max_time_regression = 0.25;   // wall_us
  double max_alloc_regression = 0.10;  // arena_allocs/arena_bytes/heap_*
  double max_rss_regression = 0.10;    // peak_rss_kb
  std::int64_t min_wall_us = 20000;        // time floor per stage
  std::uint64_t min_allocs = 1000;         // count floor
  std::uint64_t min_alloc_bytes = 1 << 20;  // bytes floor
  std::int64_t min_rss_kb = 16 * 1024;     // RSS floor
};

struct ProfDiff {
  bool ok = true;
  /// First regressing stage + the metric that tripped, when !ok.
  std::string stage;
  std::string metric;
  double ratio = 0.0;  // (current - baseline) / baseline of that metric
  std::string detail;
  /// One line per (stage, metric family) comparison, in stage order —
  /// "stage classify: wall 812ms vs 790ms (+2.8%, limit +25%)" — including
  /// SKIP lines for gates disabled by hardware/compiler mismatch.
  std::vector<std::string> lines;
  int compared = 0;
  int skipped = 0;
};

/// Compares `current` against `baseline` stage-by-stage in run order and
/// reports the FIRST stage whose time, allocations, or peak RSS regressed
/// past the thresholds. Wall-time and RSS gates are skipped when the two
/// reports disagree on hardware_threads (the baseline records the machine
/// shape it was measured on); heap gates are skipped when the compilers
/// differ or either side was built without heap hooks. Arena gates always
/// compare — they are deterministic by contract.
[[nodiscard]] ProfDiff diff_reports(const ProfReport& current,
                                    const ProfReport& baseline,
                                    const DiffThresholds& thresholds = {});

}  // namespace roomnet::prof
