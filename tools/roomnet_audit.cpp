// roomnet-audit: run-provenance determinism auditor.
//
//   roomnet-audit run <out_dir> [options]   run the pipeline, write
//                                           manifest.json / resources.json /
//                                           logs.jsonl into out_dir
//   roomnet-audit diff <manifest_a> <manifest_b>
//                                           compare two manifest.json files
//                                           and name the first divergent
//                                           stage
//
// `diff` exits 0 when the manifests agree, 1 on divergence, 2 on usage or
// I/O errors — so CI can assert "threads=1 and threads=4 produced the same
// run" and fail with the stage that broke the determinism contract.
//
// run options:
//   --seed N           sim seed (default 42)
//   --threads N        worker parallelism (default 1)
//   --idle-minutes N   idle-capture window (default 10)
//   --interactions N   interaction count (default 20)
//   --app-sample N     apps executed (default 0: skip the campaign)
//   --loss P           frame-loss probability (default 0; enables the fault
//                      layer, so ROOMNET_FAULT_SEED makes runs diverge and
//                      `diff` names the first stage the fault stream touched)
//   --no-scan          skip the active scan stage
//   --no-crowd         skip the crowd entropy stage
//   --mode M           stage-3 mode: batch (default) or streaming. A default
//                      streaming run must produce the same manifest as a
//                      batch run — `diff` across modes is the CI parity gate
//   --memcap-bytes N   streaming flow-cache memcap (arms eviction)
//   --max-flows N      streaming flow-cache flow ceiling (arms eviction)
//   --idle-timeout-s N streaming flow idle timeout, seconds (arms eviction)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "obs/manifest.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: roomnet-audit run <out_dir> [--seed N] [--threads N]\n"
               "                        [--idle-minutes N] [--interactions N]\n"
               "                        [--app-sample N] [--loss P] "
               "[--no-scan] [--no-crowd]\n"
               "                        [--mode batch|streaming] "
               "[--memcap-bytes N] [--max-flows N]\n"
               "                        [--idle-timeout-s N]\n"
               "       roomnet-audit diff <manifest_a> <manifest_b>\n");
  return 2;
}

std::int64_t parse_int(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 0);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "roomnet-audit: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

int run_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string out_dir = argv[0];
  roomnet::PipelineConfig config;
  config.telemetry_out = out_dir;
  config.seed = 42;
  config.threads = 1;
  config.idle_duration = roomnet::SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-audit: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0)
      config.seed = static_cast<std::uint64_t>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--threads") == 0)
      config.threads = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--idle-minutes") == 0)
      config.idle_duration =
          roomnet::SimTime::from_minutes(parse_int(value(), arg));
    else if (std::strcmp(arg, "--interactions") == 0)
      config.interactions = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--app-sample") == 0)
      config.app_sample = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--loss") == 0)
      config.faults.loss = std::strtod(value(), nullptr);
    else if (std::strcmp(arg, "--no-scan") == 0)
      config.run_scan = false;
    else if (std::strcmp(arg, "--no-crowd") == 0)
      config.run_crowd = false;
    else if (std::strcmp(arg, "--mode") == 0) {
      const char* mode = value();
      if (std::strcmp(mode, "streaming") == 0)
        config.mode = roomnet::PipelineMode::kStreaming;
      else if (std::strcmp(mode, "batch") == 0)
        config.mode = roomnet::PipelineMode::kBatch;
      else {
        std::fprintf(stderr, "roomnet-audit: bad --mode: %s\n", mode);
        return 2;
      }
    } else if (std::strcmp(arg, "--memcap-bytes") == 0)
      config.stream.memcap_bytes =
          static_cast<std::size_t>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--max-flows") == 0)
      config.stream.max_flows =
          static_cast<std::size_t>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--idle-timeout-s") == 0)
      config.stream.idle_timeout =
          roomnet::SimTime::from_seconds(
              static_cast<double>(parse_int(value(), arg)));
    else
      return usage();
  }

  roomnet::Pipeline pipeline(config);
  const roomnet::PipelineResults results = pipeline.run();
  const roomnet::obs::RunManifest& m = results.manifest;
  std::printf("run: seed=%#llx fault_seed=%#llx threads=%d mode=%s\n",
              static_cast<unsigned long long>(m.sim_seed),
              static_cast<unsigned long long>(m.fault_seed), m.threads,
              roomnet::to_string(config.mode));
  if (config.mode == roomnet::PipelineMode::kStreaming) {
    const roomnet::FlowCacheStats& fc = results.flow_cache;
    std::printf(
        "flow cache: created=%llu peak_flows=%zu peak_bytes=%zu "
        "prunes=%llu (idle=%llu est=%llu memcap=%llu excess=%llu "
        "flush=%llu)\n",
        static_cast<unsigned long long>(fc.flows_created), fc.peak_flows,
        fc.peak_bytes, static_cast<unsigned long long>(fc.prunes_total()),
        static_cast<unsigned long long>(fc.prunes[0]),
        static_cast<unsigned long long>(fc.prunes[1]),
        static_cast<unsigned long long>(fc.prunes[2]),
        static_cast<unsigned long long>(fc.prunes[3]),
        static_cast<unsigned long long>(fc.prunes[4]));
  }
  std::printf("config digest: %s\n", m.config_digest.c_str());
  for (const roomnet::obs::StageRecord& stage : m.stages)
    std::printf("  %-14s %s  sim_us=%lld\n", stage.name.c_str(),
                stage.sha256.c_str(), static_cast<long long>(stage.sim_us));
  std::printf("result digest: %s\n", m.result_digest.c_str());
  std::printf("wrote %s/manifest.json\n", out_dir.c_str());
  return 0;
}

int diff_command(int argc, char** argv) {
  if (argc != 2) return usage();
  const auto a = roomnet::obs::load_manifest(argv[0]);
  if (!a) {
    std::fprintf(stderr, "roomnet-audit: cannot load %s\n", argv[0]);
    return 2;
  }
  const auto b = roomnet::obs::load_manifest(argv[1]);
  if (!b) {
    std::fprintf(stderr, "roomnet-audit: cannot load %s\n", argv[1]);
    return 2;
  }
  const roomnet::obs::ManifestDiff diff = roomnet::obs::diff_manifests(*a, *b);
  if (diff.equal) {
    std::printf("identical: %s\n", diff.detail.c_str());
    return 0;
  }
  std::printf("DIVERGED [%s]%s%s: %s\n", diff.component.c_str(),
              diff.stage.empty() ? "" : " at stage ",
              diff.stage.c_str(), diff.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "run") == 0)
    return run_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "diff") == 0)
    return diff_command(argc - 2, argv + 2);
  return usage();
}
