// roomnet-corpus: seeds the fuzz corpora from realistic traffic. Runs a
// short testbed simulation (and optionally reads every pcap in a capture
// directory), then files each frame and each application payload into the
// per-harness corpus layout the fuzz executables consume:
//
//   <out>/frame/      raw link-layer frames        (fuzz_frame)
//   <out>/dns/        port 53/5353 payloads        (fuzz_dns)
//   <out>/dhcp/       port 67/68 payloads          (fuzz_dhcp)
//   <out>/ssdp/       port 1900 payloads           (fuzz_ssdp)
//   <out>/tls/        port 443 / TLS-shaped        (fuzz_tls)
//   <out>/payload/    every other app payload      (fuzz_payload)
//   <out>/roundtrip/  entropy seeds                (fuzz_roundtrip)
//   <out>/stream/     framed multi-packet records  (fuzz_stream)
//
// Files are content-addressed (first 16 sha256 hex chars), so re-running
// against the same traffic is idempotent and merging corpora is a plain
// copy. Usage:
//
//   roomnet-corpus gen <out_dir> [--seed N] [--idle-seconds S]
//                      [--interactions N] [--pcap-dir DIR]
//                      [--max-per-category N]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "netcore/pcap.hpp"
#include "netcore/sha256.hpp"
#include "proto/tls.hpp"
#include "testbed/lab.hpp"

namespace roomnet {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::string out_dir;
  std::uint64_t seed = 42;
  double idle_seconds = 60;
  int interactions = 20;
  std::string pcap_dir;
  std::size_t max_per_category = 256;
};

class CorpusWriter {
 public:
  explicit CorpusWriter(const Options& options) : options_(options) {}

  void add(const std::string& category, BytesView data) {
    if (data.empty()) return;
    auto& count = written_[category];
    if (count >= options_.max_per_category) {
      ++dropped_;
      return;
    }
    const fs::path dir = fs::path(options_.out_dir) / category;
    fs::create_directories(dir);
    const fs::path path =
        dir / (sha256_hex(data).substr(0, 16) + ".bin");
    if (fs::exists(path)) return;  // content-addressed: already seeded
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (f) ++count;
  }

  void report() const {
    std::size_t total = 0;
    for (const auto& [category, count] : written_) {
      std::printf("  %-10s %zu files\n", category.c_str(), count);
      total += count;
    }
    std::printf("seeded %zu corpus files under %s\n", total,
                options_.out_dir.c_str());
    if (dropped_ > 0)
      std::printf("note: dropped %zu inputs past the per-category cap of "
                  "%zu (raise with --max-per-category)\n",
                  dropped_, options_.max_per_category);
  }

 private:
  const Options& options_;
  std::map<std::string, std::size_t> written_;
  std::size_t dropped_ = 0;
};

bool is_port(const PacketView& view, std::uint16_t number) {
  const auto src = view.src_port();
  const auto dst = view.dst_port();
  return (src && value(*src) == number) || (dst && value(*dst) == number);
}

std::string classify_payload(const PacketView& view) {
  if (is_port(view, 53) || is_port(view, 5353)) return "dns";
  if (is_port(view, 67) || is_port(view, 68)) return "dhcp";
  if (is_port(view, 1900)) return "ssdp";
  if (is_port(view, 443) || looks_like_tls(view.app_payload())) return "tls";
  return "payload";
}

void add_frame(CorpusWriter& writer, BytesView frame) {
  writer.add("frame", frame);
  const auto view = decode_frame_view(frame);
  if (!view) return;
  const BytesView payload = view->app_payload();
  if (!payload.empty()) writer.add(classify_payload(*view), payload);
}

// The stream harness consumes an eviction-knob preamble followed by
// [u16 delta_ms][u16 length][frame] records; pack simulation frames into
// seeds of up to kFramesPerSeed packets each.
void add_stream_seeds(CorpusWriter& writer,
                      const std::vector<PcapRecord>& records) {
  constexpr std::size_t kFramesPerSeed = 48;
  constexpr std::size_t kMaxFrame = 2048;
  Bytes seed;
  std::size_t packed = 0;
  SimTime last = SimTime::from_us(0);
  const auto flush = [&] {
    if (packed > 0) writer.add("stream", BytesView(seed));
    seed.clear();
    packed = 0;
  };
  for (const auto& record : records) {
    if (seed.empty()) {
      // Preamble: bounded flows + small memcap so eviction paths run.
      const std::uint8_t preamble[] = {0, 0, 0, 4,   // max_flows = 4
                                       2,            // memcap = 2048
                                       0, 0, 0, 10,  // idle 10 s
                                       0, 0, 0, 30}; // established 30 s
      seed.assign(preamble, preamble + sizeof(preamble));
    }
    const std::uint64_t delta_ms =
        record.timestamp > last ? (record.timestamp - last).us() / 1000 : 0;
    last = record.timestamp;
    const std::uint16_t delta16 =
        static_cast<std::uint16_t>(std::min<std::uint64_t>(delta_ms, 0xffff));
    const std::size_t len = std::min(record.frame.size(), kMaxFrame);
    seed.push_back(static_cast<std::uint8_t>(delta16 >> 8));
    seed.push_back(static_cast<std::uint8_t>(delta16));
    seed.push_back(static_cast<std::uint8_t>(len >> 8));
    seed.push_back(static_cast<std::uint8_t>(len));
    seed.insert(seed.end(), record.frame.begin(), record.frame.begin() + len);
    if (++packed == kFramesPerSeed) flush();
  }
  flush();
}

int generate(const Options& options) {
  CorpusWriter writer(options);

  // Simulated traffic: a short boot + idle + interaction run covers DHCP,
  // mDNS/DNS, SSDP, TLS, and the vendor UDP protocols the devices speak.
  LabConfig config;
  config.seed = options.seed;
  config.boot_window_s = std::min(options.idle_seconds / 2, 30.0);
  Lab lab(config);
  lab.start_all();
  lab.run_idle(SimTime::from_seconds(options.idle_seconds));
  if (options.interactions > 0) lab.run_interactions(options.interactions);
  std::printf("simulation captured %zu frames (seed %llu)\n",
              lab.capture().size(),
              static_cast<unsigned long long>(options.seed));
  for (const auto& record : lab.capture().records())
    add_frame(writer, BytesView(record.frame));
  add_stream_seeds(writer, lab.capture().records());

  // Roundtrip seeds are raw generator entropy; a spread of frames gives the
  // selector one seed per codec family.
  std::size_t fed = 0;
  for (const auto& record : lab.capture().records()) {
    if (fed >= 32) break;
    if (record.frame.size() < 24) continue;
    Bytes entropy;
    entropy.push_back(static_cast<std::uint8_t>(fed % 21));
    entropy.insert(entropy.end(), record.frame.begin(), record.frame.end());
    writer.add("roundtrip", BytesView(entropy));
    ++fed;
  }

  // Recorded traffic, when a capture directory is supplied.
  if (!options.pcap_dir.empty()) {
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options.pcap_dir, ec))
      if (entry.path().extension() == ".pcap") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    std::size_t frames = 0;
    std::vector<PcapRecord> all;
    for (const auto& file : files) {
      const auto records = read_pcap_file(file.string());
      if (!records) {
        std::fprintf(stderr, "WARNING: unreadable pcap %s\n",
                     file.string().c_str());
        continue;
      }
      for (const auto& record : *records) add_frame(writer, BytesView(record.frame));
      all.insert(all.end(), records->begin(), records->end());
      frames += records->size();
    }
    add_stream_seeds(writer, all);
    std::printf("read %zu frames from %zu pcaps in %s\n", frames,
                files.size(), options.pcap_dir.c_str());
  }

  writer.report();
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s gen <out_dir> [--seed N] [--idle-seconds S]\n"
               "          [--interactions N] [--pcap-dir DIR]\n"
               "          [--max-per-category N]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace roomnet

int main(int argc, char** argv) {
  using roomnet::Options;
  if (argc < 3 || std::strcmp(argv[1], "gen") != 0) return roomnet::usage(argv[0]);
  Options options;
  options.out_dir = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      if (const char* v = next()) options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--idle-seconds") {
      if (const char* v = next()) options.idle_seconds = std::atof(v);
    } else if (arg == "--interactions") {
      if (const char* v = next()) options.interactions = std::atoi(v);
    } else if (arg == "--pcap-dir") {
      if (const char* v = next()) options.pcap_dir = v;
    } else if (arg == "--max-per-category") {
      if (const char* v = next())
        options.max_per_category = std::strtoull(v, nullptr, 10);
    } else {
      return roomnet::usage(argv[0]);
    }
  }
  return roomnet::generate(options);
}
