// roomnet-events: query CLI over the watch layer's event timelines.
//
//   roomnet-events run <out_dir> [options]  run the pipeline and write
//                                           events.jsonl (plus the usual
//                                           telemetry artifacts) into out_dir
//   roomnet-events query <events.jsonl> [filters]
//                                           print matching events, one JSON
//                                           line each (same bytes as the file)
//   roomnet-events timeline <events.jsonl> --device <mac|label>
//                                           human-readable per-device timeline
//   roomnet-events summary <events.jsonl>   event counts by type/severity and
//                                           the alert-rule lifecycle table
//   roomnet-events diff <events_a> <events_b>
//                                           compare two timelines and name the
//                                           first divergent event
//
// `diff` exits 0 when the timelines agree, 1 on divergence, 2 on usage or
// I/O errors — the events.jsonl twin of `roomnet-audit diff`, for CI to
// assert that thread counts and pipeline modes never change what the watch
// layer saw.
//
// query filters:
//   --device M        MAC ("02:a0:..") or a device-label substring
//   --type T          event type name (dhcp_lease, dns_query, ...)
//   --min-severity S  info|notice|warning|critical (default info)
//   --since S         sim-seconds lower bound (inclusive)
//   --until S         sim-seconds upper bound (inclusive)
//   --limit N         print at most N events
//
// run options mirror roomnet-audit (`--seed`, `--threads`, `--idle-minutes`,
// `--interactions`, `--app-sample`, `--loss`, `--churn`, `--no-scan`,
// `--no-crowd`, `--mode batch|streaming`) plus `--rules <file>` to load an
// alert-rule file instead of the built-in default set.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "watch/events.hpp"
#include "watch/rules.hpp"

namespace {

using roomnet::MacAddress;
using roomnet::SimTime;
using roomnet::watch::NetEvent;
using roomnet::watch::NetEventType;
using roomnet::watch::Severity;

int usage() {
  std::fprintf(
      stderr,
      "usage: roomnet-events run <out_dir> [--seed N] [--threads N]\n"
      "                         [--idle-minutes N] [--interactions N]\n"
      "                         [--app-sample N] [--loss P] [--churn P]\n"
      "                         [--no-scan] [--no-crowd] "
      "[--mode batch|streaming]\n"
      "                         [--rules <file>]\n"
      "       roomnet-events query <events.jsonl> [--device M] [--type T]\n"
      "                         [--min-severity S] [--since S] [--until S]\n"
      "                         [--limit N]\n"
      "       roomnet-events timeline <events.jsonl> --device <mac|label>\n"
      "       roomnet-events summary <events.jsonl>\n"
      "       roomnet-events diff <events_a> <events_b>\n");
  return 2;
}

std::int64_t parse_int(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 0);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "roomnet-events: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

std::optional<std::vector<NetEvent>> load_or_complain(const char* path) {
  auto events = roomnet::watch::load_events(path);
  if (!events)
    std::fprintf(stderr, "roomnet-events: cannot load %s\n", path);
  return events;
}

/// `--device` accepts either an exact MAC or a case-sensitive label
/// substring ("Echo" matches every Echo in the lab).
bool device_matches(const NetEvent& event, const std::string& needle) {
  if (const auto mac = MacAddress::parse(needle))
    return event.device == *mac;
  return event.device_label.find(needle) != std::string::npos;
}

std::string format_time(SimTime at) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%lld.%06llds",
                static_cast<long long>(at.us() / 1'000'000),
                static_cast<long long>(at.us() % 1'000'000));
  return buffer;
}

int run_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string out_dir = argv[0];
  roomnet::PipelineConfig config;
  config.telemetry_out = out_dir;
  config.seed = 42;
  config.threads = 1;
  config.idle_duration = roomnet::SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-events: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0)
      config.seed = static_cast<std::uint64_t>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--threads") == 0)
      config.threads = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--idle-minutes") == 0)
      config.idle_duration =
          roomnet::SimTime::from_minutes(parse_int(value(), arg));
    else if (std::strcmp(arg, "--interactions") == 0)
      config.interactions = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--app-sample") == 0)
      config.app_sample = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--loss") == 0)
      config.faults.loss = std::strtod(value(), nullptr);
    else if (std::strcmp(arg, "--churn") == 0)
      config.faults.churn = std::strtod(value(), nullptr);
    else if (std::strcmp(arg, "--no-scan") == 0)
      config.run_scan = false;
    else if (std::strcmp(arg, "--no-crowd") == 0)
      config.run_crowd = false;
    else if (std::strcmp(arg, "--mode") == 0) {
      const char* mode = value();
      if (std::strcmp(mode, "streaming") == 0)
        config.mode = roomnet::PipelineMode::kStreaming;
      else if (std::strcmp(mode, "batch") == 0)
        config.mode = roomnet::PipelineMode::kBatch;
      else {
        std::fprintf(stderr, "roomnet-events: bad --mode: %s\n", mode);
        return 2;
      }
    } else if (std::strcmp(arg, "--rules") == 0) {
      const char* path = value();
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "roomnet-events: cannot read %s\n", path);
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      config.watch.rules = text.str();
      const roomnet::watch::RuleParse parsed =
          roomnet::watch::parse_rules(config.watch.rules);
      if (!parsed.error.empty()) {
        std::fprintf(stderr, "roomnet-events: %s: %s\n", path,
                     parsed.error.c_str());
        return 2;
      }
    } else {
      return usage();
    }
  }

  roomnet::Pipeline pipeline(config);
  const roomnet::PipelineResults results = pipeline.run();
  const roomnet::watch::WatchReport& watch = results.watch;
  std::printf("watch: events=%llu (dropped=%llu) devices=%llu packets=%llu\n",
              static_cast<unsigned long long>(watch.events_emitted),
              static_cast<unsigned long long>(watch.events_dropped),
              static_cast<unsigned long long>(watch.devices_tracked),
              static_cast<unsigned long long>(watch.packets_seen));
  for (const roomnet::watch::AlertRuleSummary& rule : watch.alerts)
    std::printf("  %-20s %-8s fired=%llu resolved=%llu firing=%llu\n",
                rule.name.c_str(), to_string(rule.severity),
                static_cast<unsigned long long>(rule.fired),
                static_cast<unsigned long long>(rule.resolved),
                static_cast<unsigned long long>(rule.firing));
  std::printf("timeline hash: %s\n",
              roomnet::watch::hash_events(watch.events).c_str());
  std::printf("wrote %s/events.jsonl\n", out_dir.c_str());
  return 0;
}

int query_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto events = load_or_complain(argv[0]);
  if (!events) return 2;
  std::string device;
  std::optional<NetEventType> type;
  Severity min_severity = Severity::kInfo;
  std::int64_t since_us = 0;
  std::int64_t until_us = -1;
  std::int64_t limit = -1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-events: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--device") == 0)
      device = value();
    else if (std::strcmp(arg, "--type") == 0) {
      const char* name = value();
      type = roomnet::watch::parse_event_type(name);
      if (!type) {
        std::fprintf(stderr, "roomnet-events: unknown event type: %s\n", name);
        return 2;
      }
    } else if (std::strcmp(arg, "--min-severity") == 0) {
      const char* name = value();
      const auto severity = roomnet::watch::parse_severity(name);
      if (!severity) {
        std::fprintf(stderr, "roomnet-events: unknown severity: %s\n", name);
        return 2;
      }
      min_severity = *severity;
    } else if (std::strcmp(arg, "--since") == 0)
      since_us = parse_int(value(), arg) * 1'000'000;
    else if (std::strcmp(arg, "--until") == 0)
      until_us = parse_int(value(), arg) * 1'000'000;
    else if (std::strcmp(arg, "--limit") == 0)
      limit = parse_int(value(), arg);
    else
      return usage();
  }
  std::int64_t printed = 0;
  for (const NetEvent& event : *events) {
    if (limit >= 0 && printed >= limit) break;
    if (!device.empty() && !device_matches(event, device)) continue;
    if (type && event.type != *type) continue;
    if (event.severity < min_severity) continue;
    if (event.at.us() < since_us) continue;
    if (until_us >= 0 && event.at.us() > until_us) continue;
    std::printf("%s\n", roomnet::watch::to_json(event).c_str());
    ++printed;
  }
  return 0;
}

int timeline_command(int argc, char** argv) {
  if (argc < 3 || std::strcmp(argv[1], "--device") != 0) return usage();
  const auto events = load_or_complain(argv[0]);
  if (!events) return 2;
  const std::string device = argv[2];
  std::size_t matched = 0;
  for (const NetEvent& event : *events) {
    if (!device_matches(event, device)) continue;
    if (matched++ == 0)
      std::printf("timeline for %s (%s)\n", event.device.to_string().c_str(),
                  event.device_label.c_str());
    std::string details;
    for (const auto& [key, value] : event.fields) {
      if (!details.empty()) details += " ";
      details += key + "=" + value;
    }
    std::printf("  %14s  %-8s %-15s %s%s%s\n",
                format_time(event.at).c_str(), to_string(event.severity),
                to_string(event.type), details.c_str(),
                event.flow.empty() ? "" : "  on ", event.flow.c_str());
  }
  if (matched == 0) {
    std::fprintf(stderr, "roomnet-events: no events for device %s\n",
                 device.c_str());
    return 1;
  }
  std::printf("%zu events\n", matched);
  return 0;
}

int summary_command(int argc, char** argv) {
  if (argc != 1) return usage();
  const auto events = load_or_complain(argv[0]);
  if (!events) return 2;
  std::size_t by_type[roomnet::watch::kNetEventTypeCount] = {};
  std::size_t by_severity[4] = {};
  // rule name -> {fired, resolved}, built back out of the alert events.
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
      rules;
  for (const NetEvent& event : *events) {
    ++by_type[static_cast<std::size_t>(event.type)];
    ++by_severity[static_cast<std::size_t>(event.severity)];
    if (event.type != NetEventType::kAlert) continue;
    std::string rule, state;
    for (const auto& [key, value] : event.fields) {
      if (key == "rule") rule = value;
      if (key == "state") state = value;
    }
    auto it = rules.begin();
    for (; it != rules.end(); ++it)
      if (it->first == rule) break;
    if (it == rules.end())
      it = rules.insert(rules.end(), {rule, {0, 0}});
    if (state == "firing") ++it->second.first;
    if (state == "resolved") ++it->second.second;
  }
  std::printf("%zu events\n", events->size());
  for (std::size_t i = 0; i < roomnet::watch::kNetEventTypeCount; ++i)
    if (by_type[i] != 0)
      std::printf("  %-15s %zu\n",
                  to_string(static_cast<NetEventType>(i)), by_type[i]);
  std::printf("by severity:\n");
  for (std::size_t i = 0; i < 4; ++i)
    if (by_severity[i] != 0)
      std::printf("  %-15s %zu\n", to_string(static_cast<Severity>(i)),
                  by_severity[i]);
  if (!rules.empty()) {
    std::printf("alerts (in-timeline):\n");
    for (const auto& [rule, counts] : rules)
      std::printf("  %-20s firing=%zu resolved=%zu\n", rule.c_str(),
                  counts.first, counts.second);
  }
  std::printf("timeline hash: %s\n",
              roomnet::watch::hash_events(*events).c_str());
  return 0;
}

int diff_command(int argc, char** argv) {
  if (argc != 2) return usage();
  const auto a = load_or_complain(argv[0]);
  if (!a) return 2;
  const auto b = load_or_complain(argv[1]);
  if (!b) return 2;
  const roomnet::watch::EventDiff diff = roomnet::watch::diff_events(*a, *b);
  if (diff.equal) {
    std::printf("identical: %zu events, hash %s\n", a->size(),
                roomnet::watch::hash_events(*a).c_str());
    return 0;
  }
  std::printf("DIVERGED at event %zu:\n%s\n", diff.index, diff.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "run") == 0)
    return run_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "query") == 0)
    return query_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "timeline") == 0)
    return timeline_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "summary") == 0)
    return summary_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "diff") == 0)
    return diff_command(argc - 2, argv + 2);
  return usage();
}
