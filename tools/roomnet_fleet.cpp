// roomnet-fleet: the multi-household fleet driver CLI.
//
//   roomnet-fleet run <out_dir> [options]   sample and run a household fleet,
//                                           writing fleet_manifest.json,
//                                           fleet_aggregates.json, and
//                                           perf.json into out_dir
//   roomnet-fleet summary <out_dir>         print the headline aggregates of
//                                           a previous run from its artifacts
//
// run options:
//   --households N    fleet size (default 1000)
//   --seed N          fleet seed (default 42); household k is reproducible
//                     from (seed, k) alone
//   --threads N       worker parallelism (default: ROOMNET_THREADS env var,
//                     else hardware concurrency)
//   --shard-size N    households per TaskPool chunk (default 64)
//   --mode M          streaming|batch per-household analysis (default
//                     streaming)
//   --idle-s N        per-household idle capture window, sim seconds
//                     (default 150)
//   --max-devices N   device-count ceiling per household (default 8)
//
// Determinism: fleet_manifest.json and fleet_aggregates.json are
// byte-identical for any --threads and any --shard-size (CI compares them
// with cmp across thread counts). perf.json is the volatile resource twin.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "exec/task_pool.hpp"
#include "fleet/fleet.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace {

using roomnet::SimTime;
using roomnet::fleet::FleetConfig;
using roomnet::fleet::FleetResults;
using roomnet::fleet::HouseholdMode;

int usage() {
  std::fprintf(
      stderr,
      "usage: roomnet-fleet run <out_dir> [--households N] [--seed N]\n"
      "                        [--threads N] [--shard-size N]\n"
      "                        [--mode streaming|batch] [--idle-s N]\n"
      "                        [--max-devices N]\n"
      "       roomnet-fleet summary <out_dir>\n");
  return 2;
}

std::int64_t parse_int(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 0);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "roomnet-fleet: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

int run_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string out_dir = argv[0];
  FleetConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-fleet: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--households") == 0) {
      config.households = static_cast<std::uint64_t>(
          parse_int(value(), "--households"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(parse_int(value(), "--seed"));
    } else if (std::strcmp(arg, "--threads") == 0) {
      config.threads = static_cast<std::size_t>(
          parse_int(value(), "--threads"));
    } else if (std::strcmp(arg, "--shard-size") == 0) {
      config.shard_size = static_cast<std::size_t>(
          parse_int(value(), "--shard-size"));
    } else if (std::strcmp(arg, "--mode") == 0) {
      const char* mode = value();
      if (std::strcmp(mode, "streaming") == 0) {
        config.household.mode = HouseholdMode::kStreaming;
      } else if (std::strcmp(mode, "batch") == 0) {
        config.household.mode = HouseholdMode::kBatch;
      } else {
        std::fprintf(stderr, "roomnet-fleet: bad --mode: %s\n", mode);
        return 2;
      }
    } else if (std::strcmp(arg, "--idle-s") == 0) {
      config.household.idle =
          SimTime::from_seconds(static_cast<double>(
              parse_int(value(), "--idle-s")));
    } else if (std::strcmp(arg, "--max-devices") == 0) {
      config.household.max_devices = static_cast<std::size_t>(
          parse_int(value(), "--max-devices"));
    } else {
      std::fprintf(stderr, "roomnet-fleet: unknown option: %s\n", arg);
      return usage();
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "roomnet-fleet: cannot create %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  roomnet::exec::TaskPool pool(config.threads);
  roomnet::prof::Profiler::global().begin_run(
      static_cast<int>(pool.threads()));
  const FleetResults results = roomnet::fleet::run_fleet(config, pool);
  const roomnet::prof::ProfReport profile =
      roomnet::prof::Profiler::global().finish();

  if (!write_text_file(out_dir + "/fleet_manifest.json",
                       to_json(results.manifest)) ||
      !write_text_file(out_dir + "/fleet_aggregates.json",
                       to_json(results.aggregates)) ||
      !write_text_file(out_dir + "/perf.json",
                       roomnet::prof::to_json(profile))) {
    std::fprintf(stderr, "roomnet-fleet: cannot write into %s\n",
                 out_dir.c_str());
    return 1;
  }

  const auto& agg = results.aggregates;
  const auto& stats = results.stats;
  std::printf("fleet: %llu households, %llu devices, %llu local packets, "
              "%llu flows\n",
              static_cast<unsigned long long>(agg.households),
              static_cast<unsigned long long>(agg.devices),
              static_cast<unsigned long long>(agg.packets),
              static_cast<unsigned long long>(agg.flows));
  std::printf("rate: %.1f households/s on %zu threads (%.2fs wall, "
              "%lld kB peak RSS)\n",
              stats.households_per_sec, stats.threads, stats.wall_s,
              static_cast<long long>(stats.peak_rss_kb));
  std::printf("contexts: %llu created, %llu reuses\n",
              static_cast<unsigned long long>(stats.contexts_created),
              static_cast<unsigned long long>(stats.context_reuses));
  std::printf("result_digest: %s\n", results.manifest.result_digest.c_str());
  std::printf("wrote %s/fleet_manifest.json, fleet_aggregates.json, "
              "perf.json\n", out_dir.c_str());
  return 0;
}

int summary_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string out_dir = argv[0];
  const auto manifest = read_text_file(out_dir + "/fleet_manifest.json");
  const auto aggregates = read_text_file(out_dir + "/fleet_aggregates.json");
  if (!manifest || !aggregates) {
    std::fprintf(stderr,
                 "roomnet-fleet: no fleet artifacts under %s "
                 "(run `roomnet-fleet run %s` first)\n",
                 out_dir.c_str(), out_dir.c_str());
    return 1;
  }
  std::printf("== %s/fleet_manifest.json ==\n%s", out_dir.c_str(),
              manifest->c_str());
  std::printf("== %s/fleet_aggregates.json ==\n%s", out_dir.c_str(),
              aggregates->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string verb = argv[1];
  if (verb == "run") return run_command(argc - 2, argv + 2);
  if (verb == "summary") return summary_command(argc - 2, argv + 2);
  return usage();
}
