// roomnet-prof: the perf-regression ledger CLI — the resource twin of
// roomnet-audit.
//
//   roomnet-prof run <out_dir> [options]   run the pipeline with profiling
//                                          telemetry, write perf.json (plus
//                                          trace.folded / alloc.folded) into
//                                          out_dir, print the stage table
//   roomnet-prof show <perf.json>          print a report's stage table and
//                                          its deterministic fingerprint
//   roomnet-prof diff <current> <baseline> [gates]
//                                          compare two perf.json files and
//                                          name the FIRST regressing stage
//
// `diff` exits 0 when every gate passes, 1 on a regression (naming the first
// regressing stage and metric), 2 on usage or I/O errors — so CI can gate a
// PR on "no stage got slower or hungrier than the committed baseline".
// Wall-time and RSS gates auto-skip when the two reports disagree on
// hardware_threads; heap gates skip across compilers or unhooked builds; the
// arena gates always compare (deterministic by contract, DESIGN.md §11).
//
// run options (mirroring roomnet-audit):
//   --seed N           sim seed (default 42)
//   --threads N        worker parallelism (default 1)
//   --idle-minutes N   idle-capture window (default 10)
//   --interactions N   interaction count (default 20)
//   --app-sample N     apps executed (default 0: skip the campaign)
//   --no-scan          skip the active scan stage
//   --no-crowd         skip the crowd entropy stage
//
// diff gate options (fractions, e.g. 0.25 = +25%):
//   --max-time P       wall-time regression limit (default 0.25)
//   --max-alloc P      allocation regression limit (default 0.10)
//   --max-rss P        peak-RSS regression limit (default 0.10)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "prof/report.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: roomnet-prof run <out_dir> [--seed N] [--threads N]\n"
      "                       [--idle-minutes N] [--interactions N]\n"
      "                       [--app-sample N] [--no-scan] [--no-crowd]\n"
      "       roomnet-prof show <perf.json>\n"
      "       roomnet-prof diff <current.json> <baseline.json>\n"
      "                       [--max-time P] [--max-alloc P] [--max-rss P]\n");
  return 2;
}

std::int64_t parse_int(const char* text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 0);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "roomnet-prof: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

double parse_fraction(const char* text, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < 0.0) {
    std::fprintf(stderr, "roomnet-prof: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

void print_stage_table(const roomnet::prof::ProfReport& report) {
  std::printf("%-14s %10s %10s %10s %8s %9s %12s %12s\n", "stage", "wall_ms",
              "user_ms", "sys_ms", "faults", "peak_rss", "arena_bytes",
              "heap_bytes");
  const auto row = [](const roomnet::prof::StageProfile& s) {
    std::printf("%-14s %10lld %10lld %10lld %8lld %8lldK %12llu %12llu\n",
                s.name.c_str(), static_cast<long long>(s.wall_us / 1000),
                static_cast<long long>(s.user_us / 1000),
                static_cast<long long>(s.sys_us / 1000),
                static_cast<long long>(s.minor_faults + s.major_faults),
                static_cast<long long>(s.peak_rss_kb),
                static_cast<unsigned long long>(s.arena_bytes),
                static_cast<unsigned long long>(s.heap_bytes));
  };
  for (const auto& stage : report.stages) row(stage);
  row(report.totals);
  std::printf("threads=%d hardware_threads=%lld heap_hooks=%s compiler=%s\n",
              report.threads,
              static_cast<long long>(report.hardware_threads),
              report.profile_heap ? "on" : "off", report.compiler.c_str());
}

int run_command(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string out_dir = argv[0];
  roomnet::PipelineConfig config;
  config.telemetry_out = out_dir;
  config.seed = 42;
  config.threads = 1;
  config.idle_duration = roomnet::SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-prof: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0)
      config.seed = static_cast<std::uint64_t>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--threads") == 0)
      config.threads = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--idle-minutes") == 0)
      config.idle_duration =
          roomnet::SimTime::from_minutes(parse_int(value(), arg));
    else if (std::strcmp(arg, "--interactions") == 0)
      config.interactions = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--app-sample") == 0)
      config.app_sample = static_cast<int>(parse_int(value(), arg));
    else if (std::strcmp(arg, "--no-scan") == 0)
      config.run_scan = false;
    else if (std::strcmp(arg, "--no-crowd") == 0)
      config.run_crowd = false;
    else
      return usage();
  }

  roomnet::Pipeline pipeline(config);
  const roomnet::PipelineResults results = pipeline.run();
  print_stage_table(results.profile);
  std::printf("wrote %s/perf.json\n", out_dir.c_str());
  return 0;
}

int show_command(int argc, char** argv) {
  if (argc != 1) return usage();
  const auto report = roomnet::prof::load_report(argv[0]);
  if (!report) {
    std::fprintf(stderr, "roomnet-prof: cannot load %s\n", argv[0]);
    return 2;
  }
  print_stage_table(*report);
  std::printf("deterministic fingerprint:\n%s",
              roomnet::prof::deterministic_fingerprint(*report).c_str());
  return 0;
}

int diff_command(int argc, char** argv) {
  if (argc < 2) return usage();
  roomnet::prof::DiffThresholds thresholds;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "roomnet-prof: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--max-time") == 0)
      thresholds.max_time_regression = parse_fraction(value(), arg);
    else if (std::strcmp(arg, "--max-alloc") == 0)
      thresholds.max_alloc_regression = parse_fraction(value(), arg);
    else if (std::strcmp(arg, "--max-rss") == 0)
      thresholds.max_rss_regression = parse_fraction(value(), arg);
    else
      return usage();
  }
  const auto current = roomnet::prof::load_report(argv[0]);
  if (!current) {
    std::fprintf(stderr, "roomnet-prof: cannot load %s\n", argv[0]);
    return 2;
  }
  const auto baseline = roomnet::prof::load_report(argv[1]);
  if (!baseline) {
    std::fprintf(stderr, "roomnet-prof: cannot load %s\n", argv[1]);
    return 2;
  }
  const roomnet::prof::ProfDiff diff =
      roomnet::prof::diff_reports(*current, *baseline, thresholds);
  for (const auto& line : diff.lines) std::printf("%s\n", line.c_str());
  std::printf("%d gates compared, %d skipped\n", diff.compared, diff.skipped);
  if (diff.ok) {
    std::printf("ok: no stage regressed past the thresholds\n");
    return 0;
  }
  std::printf("REGRESSED at stage %s [%s]: %s\n", diff.stage.c_str(),
              diff.metric.c_str(), diff.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "run") == 0)
    return run_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "show") == 0)
    return show_command(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "diff") == 0)
    return diff_command(argc - 2, argv + 2);
  return usage();
}
