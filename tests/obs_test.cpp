#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/log.hpp"
#include "obs/manifest.hpp"

namespace roomnet::obs {
namespace {

// ---------------------------------------------------------------------------
// Ledger: leveled, ring-buffered structured logging.
// ---------------------------------------------------------------------------

TEST(Ledger, OffByDefaultAndRecordsNothing) {
  Ledger ledger;
  EXPECT_EQ(ledger.level(), LogLevel::kOff);
  EXPECT_FALSE(ledger.should_log(LogLevel::kError));
  ledger.log(LogLevel::kError, "pipeline", "boom");
  EXPECT_EQ(ledger.recorded(), 0u);
  EXPECT_TRUE(ledger.records().empty());
}

TEST(Ledger, LevelGatesBySeverity) {
  Ledger ledger;
  ledger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(ledger.should_log(LogLevel::kError));
  EXPECT_TRUE(ledger.should_log(LogLevel::kWarn));
  EXPECT_FALSE(ledger.should_log(LogLevel::kInfo));
  EXPECT_FALSE(ledger.should_log(LogLevel::kDebug));
  // kOff is never loggable, even at the most permissive level.
  ledger.set_level(LogLevel::kDebug);
  EXPECT_FALSE(ledger.should_log(LogLevel::kOff));

  ledger.set_level(LogLevel::kWarn);
  ledger.log(LogLevel::kError, "scan", "kept-error");
  ledger.log(LogLevel::kInfo, "scan", "dropped-info");
  ledger.log(LogLevel::kWarn, "scan", "kept-warn");
  const auto records = ledger.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "kept-error");
  EXPECT_EQ(records[1].event, "kept-warn");
}

TEST(Ledger, RingKeepsNewestInEmissionOrder) {
  Ledger ledger;
  ledger.set_level(LogLevel::kDebug);
  ledger.reset(/*capacity=*/3);
  for (int i = 0; i < 8; ++i)
    ledger.log(LogLevel::kInfo, "t", "ev" + std::to_string(i));
  EXPECT_EQ(ledger.recorded(), 8u);
  const auto records = ledger.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event, "ev5");
  EXPECT_EQ(records[1].event, "ev6");
  EXPECT_EQ(records[2].event, "ev7");
  EXPECT_EQ(records[0].seq, 5u);
  EXPECT_EQ(records[2].seq, 7u);
}

TEST(Ledger, SimClockStampsRecords) {
  Ledger ledger;
  ledger.set_level(LogLevel::kInfo);
  ledger.set_sim_clock([] { return SimTime::from_us(1234); });
  ledger.log(LogLevel::kInfo, "pipeline", "stamped");
  ledger.set_sim_clock(nullptr);
  ledger.log(LogLevel::kInfo, "pipeline", "unstamped");
  const auto records = ledger.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sim_us, 1234);
  EXPECT_EQ(records[1].sim_us, 0);
}

TEST(Ledger, KvOverloadsRenderDeterministically) {
  EXPECT_EQ(kv("s", "text").value, "text");
  EXPECT_EQ(kv("i", std::int64_t{-7}).value, "-7");
  EXPECT_EQ(kv("u", std::uint64_t{18446744073709551615ull}).value,
            "18446744073709551615");
  EXPECT_EQ(kv("n", 42).value, "42");
  EXPECT_EQ(kv("b", true).value, "true");
  EXPECT_EQ(kv("b", false).value, "false");
  EXPECT_EQ(kv("d", 0.5).value, "0.5");
}

TEST(Ledger, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), LogLevel::kOff);
}

TEST(Ledger, JsonlOneObjectPerLineWithEscaping) {
  Ledger ledger;
  ledger.set_level(LogLevel::kInfo);
  ledger.log(LogLevel::kInfo, "scan", "probe",
             {kv("target", "cam\"1\""), kv("note", "line1\nline2")});
  const std::string jsonl = to_jsonl(ledger.records());
  EXPECT_NE(jsonl.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\":\"scan\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"probe\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"target\":\"cam\\\"1\\\"\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"note\":\"line1\\nline2\""), std::string::npos);
  // Exactly one line, terminated: a raw newline from the field value must
  // not split the record.
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
}

TEST(Ledger, WriteJsonlRoundTripsThroughDisk) {
  Ledger ledger;
  ledger.set_level(LogLevel::kInfo);
  ledger.log(LogLevel::kInfo, "pipeline", "run_start", {kv("seed", 42)});
  const std::string path = "obs_test_logs.jsonl";
  ASSERT_TRUE(write_jsonl(path, ledger.records()));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_jsonl(ledger.records()));
  std::filesystem::remove(path);
}

TEST(Ledger, MacroEvaluatesFieldsLazily) {
  // ROOMNET_LOG targets the global ledger; force it off so the field
  // expression must not run.
  Ledger& global = Ledger::global();
  const LogLevel saved = global.level();
  global.set_level(LogLevel::kOff);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return std::int64_t{1};
  };
  ROOMNET_LOG(kInfo, "test", "gated", kv("n", count()));
  EXPECT_EQ(evaluations, 0);
  global.set_level(LogLevel::kInfo);
  const std::uint64_t before = global.recorded();
  ROOMNET_LOG(kInfo, "test", "emitted", kv("n", count()));
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(global.recorded(), before + 1);
  global.set_level(saved);
}

// ---------------------------------------------------------------------------
// CanonicalHasher: order-sensitive, length-prefixed canonical serialization.
// ---------------------------------------------------------------------------

TEST(CanonicalHasher, SameInputsSameDigest) {
  CanonicalHasher a;
  a.u64(7);
  a.str("idle");
  a.f64(0.25);
  a.boolean(true);
  CanonicalHasher b;
  b.u64(7);
  b.str("idle");
  b.f64(0.25);
  b.boolean(true);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 64u);
}

TEST(CanonicalHasher, OrderAndTypeMatter) {
  CanonicalHasher ab;
  ab.str("a");
  ab.str("b");
  CanonicalHasher ba;
  ba.str("b");
  ba.str("a");
  EXPECT_NE(ab.hex(), ba.hex());

  // Length prefixes keep adjacent strings from sliding into each other:
  // ("ab","c") must not collide with ("a","bc").
  CanonicalHasher split1;
  split1.str("ab");
  split1.str("c");
  CanonicalHasher split2;
  split2.str("a");
  split2.str("bc");
  EXPECT_NE(split1.hex(), split2.hex());
}

TEST(CanonicalHasher, DigestIsSnapshotNotFinalization) {
  // digest()/hex() copy-finalize: the hasher keeps streaming afterwards,
  // which is how the pipeline snapshots its running capture hash at each
  // sim-stage boundary.
  CanonicalHasher h;
  h.str("lab_boot");
  const std::string at_boot = h.hex();
  h.str("idle");
  const std::string at_idle = h.hex();
  EXPECT_NE(at_boot, at_idle);
  CanonicalHasher replay;
  replay.str("lab_boot");
  EXPECT_EQ(replay.hex(), at_boot);
  replay.str("idle");
  EXPECT_EQ(replay.hex(), at_idle);
}

// ---------------------------------------------------------------------------
// RunManifest: serialization, parsing, and first-divergence diffing.
// ---------------------------------------------------------------------------

RunManifest sample_manifest() {
  ManifestBuilder builder;
  builder.begin(/*sim_seed=*/42,
                /*fault_seed=*/0xfa175eed0c0de5ull ^ 42ull,
                /*config_digest=*/"cfgdigest", /*threads=*/4);
  builder.add_stage("lab_boot", std::string(64, 'a'), 1000, 2, 2);
  builder.add_stage("idle", std::string(64, 'b'), 600000000, 5, 5);
  builder.add_stage("classify", std::string(64, 'c'), 600000000, 9, 9);
  return builder.finish();
}

TEST(Manifest, JsonRoundTripPreservesDeterministicFields) {
  const RunManifest m = sample_manifest();
  const std::string json = to_json(m);
  const std::optional<RunManifest> parsed = parse_manifest(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->schema, m.schema);
  EXPECT_EQ(parsed->tool, m.tool);
  EXPECT_EQ(parsed->compiler, m.compiler);
  EXPECT_EQ(parsed->cxx_standard, m.cxx_standard);
  EXPECT_EQ(parsed->sim_seed, m.sim_seed);
  EXPECT_EQ(parsed->fault_seed, m.fault_seed);
  EXPECT_EQ(parsed->config_digest, m.config_digest);
  EXPECT_EQ(parsed->result_digest, m.result_digest);
  ASSERT_EQ(parsed->stages.size(), m.stages.size());
  for (std::size_t i = 0; i < m.stages.size(); ++i)
    EXPECT_EQ(parsed->stages[i], m.stages[i]);
  // Round-tripping the parsed manifest reproduces the exact bytes.
  EXPECT_EQ(to_json(*parsed), json);
}

TEST(Manifest, SeedsSurviveAsFullWidthU64) {
  ManifestBuilder builder;
  // Past 2^53: a JSON double would silently round this.
  builder.begin(0xdeadbeefcafef00dull, 0xffffffffffffffffull, "cfg", 1);
  const RunManifest m = builder.finish();
  const std::string json = to_json(m);
  EXPECT_NE(json.find("\"sim_seed\": \"0xdeadbeefcafef00d\""),
            std::string::npos);
  const std::optional<RunManifest> parsed = parse_manifest(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sim_seed, 0xdeadbeefcafef00dull);
  EXPECT_EQ(parsed->fault_seed, 0xffffffffffffffffull);
}

TEST(Manifest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_manifest("").has_value());
  EXPECT_FALSE(parse_manifest("not json").has_value());
  EXPECT_FALSE(parse_manifest("{}").has_value());
  EXPECT_FALSE(parse_manifest("[1,2,3]").has_value());
}

TEST(Manifest, ResultDigestCoversStageOrder) {
  ManifestBuilder forward;
  forward.begin(1, 2, "cfg", 1);
  forward.add_stage("a", std::string(64, '1'), 0);
  forward.add_stage("b", std::string(64, '2'), 0);
  ManifestBuilder reversed;
  reversed.begin(1, 2, "cfg", 1);
  reversed.add_stage("b", std::string(64, '2'), 0);
  reversed.add_stage("a", std::string(64, '1'), 0);
  EXPECT_NE(forward.finish().result_digest, reversed.finish().result_digest);
}

TEST(ManifestDiffing, EqualManifestsReportEqual) {
  const RunManifest a = sample_manifest();
  const RunManifest b = sample_manifest();
  const ManifestDiff diff = diff_manifests(a, b);
  EXPECT_TRUE(diff.equal);
  EXPECT_EQ(diff.component, "");
  EXPECT_EQ(diff.stage, "");
}

TEST(ManifestDiffing, NamesFirstDivergentStage) {
  const RunManifest a = sample_manifest();
  RunManifest b = sample_manifest();
  // Corrupt the middle and last stages: the diff must name the middle one.
  b.stages[1].sha256 = std::string(64, 'x');
  b.stages[2].sha256 = std::string(64, 'y');
  const ManifestDiff diff = diff_manifests(a, b);
  EXPECT_FALSE(diff.equal);
  EXPECT_EQ(diff.component, "stage");
  EXPECT_EQ(diff.stage, "idle");
}

TEST(ManifestDiffing, SimTimeDivergenceCountsAsStageDivergence) {
  const RunManifest a = sample_manifest();
  RunManifest b = sample_manifest();
  b.stages[0].sim_us += 1;
  const ManifestDiff diff = diff_manifests(a, b);
  EXPECT_EQ(diff.component, "stage");
  EXPECT_EQ(diff.stage, "lab_boot");
}

TEST(ManifestDiffing, FaultSeedMismatchStillNamesFirstDivergentStage) {
  // Different fault seeds are an *expected* divergence source; the audit
  // must keep walking so the caller learns which stage the fault stream
  // first touched.
  const RunManifest a = sample_manifest();
  RunManifest b = sample_manifest();
  b.fault_seed ^= 0x1111;
  b.stages[2].sha256 = std::string(64, 'z');
  const ManifestDiff diff = diff_manifests(a, b);
  EXPECT_FALSE(diff.equal);
  EXPECT_EQ(diff.component, "stage");
  EXPECT_EQ(diff.stage, "classify");

  // With identical stages, the fault-seed difference alone is reported.
  RunManifest c = sample_manifest();
  c.fault_seed ^= 0x1111;
  const ManifestDiff seed_only = diff_manifests(a, c);
  EXPECT_FALSE(seed_only.equal);
  EXPECT_EQ(seed_only.component, "fault_seed");
}

TEST(ManifestDiffing, SimSeedAndConfigShortCircuit) {
  const RunManifest a = sample_manifest();
  RunManifest b = sample_manifest();
  b.sim_seed = 43;
  EXPECT_EQ(diff_manifests(a, b).component, "sim_seed");
  RunManifest c = sample_manifest();
  c.config_digest = "other";
  EXPECT_EQ(diff_manifests(a, c).component, "config");
}

TEST(ManifestDiffing, StageListMismatchIsItsOwnComponent) {
  const RunManifest a = sample_manifest();
  RunManifest fewer = sample_manifest();
  fewer.stages.pop_back();
  EXPECT_EQ(diff_manifests(a, fewer).component, "stage_list");
  RunManifest renamed = sample_manifest();
  renamed.stages[0].name = "other_stage";
  EXPECT_EQ(diff_manifests(a, renamed).component, "stage_list");
}

TEST(Manifest, LoadManifestReadsWhatToJsonWrote) {
  const RunManifest m = sample_manifest();
  const std::string path = "obs_test_manifest.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << to_json(m);
  }
  const std::optional<RunManifest> loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(diff_manifests(m, *loaded).equal);
  std::filesystem::remove(path);
  EXPECT_FALSE(load_manifest(path).has_value());
}

TEST(Manifest, ResourcesJsonCarriesVolatileAccounting) {
  const RunManifest m = sample_manifest();
  const std::string json = resources_to_json(m);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_kb\":"), std::string::npos);
  // The builder differences cumulative task counters into per-stage deltas.
  EXPECT_NE(json.find("\"exec_tasks_submitted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"exec_tasks_submitted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"exec_tasks_submitted\": 4"), std::string::npos);
  // None of it leaks into the deterministic manifest.
  const std::string deterministic = to_json(m);
  EXPECT_EQ(deterministic.find("wall_ms"), std::string::npos);
  EXPECT_EQ(deterministic.find("peak_rss_kb"), std::string::npos);
  EXPECT_EQ(deterministic.find("threads"), std::string::npos);
}

TEST(Manifest, PeakRssIsPositiveOnLinux) {
  EXPECT_GT(peak_rss_kb(), 0);
}

}  // namespace
}  // namespace roomnet::obs
