// Tests for identifier extraction, protocol-usage aggregation, the
// communication graph, and the exposure matrix.
#include <gtest/gtest.h>

#include "analysis/exposure.hpp"
#include "analysis/identifiers.hpp"
#include "analysis/overview.hpp"
#include "proto/dhcp.hpp"
#include "proto/dns.hpp"
#include "proto/ssdp.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"
#include "sim/host.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) { return MacAddress::from_u64(0x02a000000000ull | n); }

// ------------------------------------------------------------- identifiers

TEST(Identifiers, PossessiveNames) {
  const auto names =
      extract_possessive_names("Roku 3 - Jane's Room and Bob's Kitchen TV");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Jane's Room");
  EXPECT_EQ(names[1], "Bob's Kitchen");
}

TEST(Identifiers, PossessiveNeedsBothWords) {
  EXPECT_TRUE(extract_possessive_names("just 's nothing").empty());
  EXPECT_TRUE(extract_possessive_names("trailing Jane's ").empty());
  EXPECT_TRUE(extract_possessive_names("no apostrophes here").empty());
}

TEST(Identifiers, Uuids) {
  const std::string text =
      "usn uuid:296F0ED3-af44-4f44-8a7f-02a000000002::rootdevice";
  const auto uuids = extract_uuids(text);
  ASSERT_EQ(uuids.size(), 1u);
  EXPECT_EQ(uuids[0], "296f0ed3-af44-4f44-8a7f-02a000000002");
}

TEST(Identifiers, UuidNotInsideLongerHexRun) {
  // 37 hex chars followed by valid groups: the leading context disqualifies.
  const std::string text =
      "a296f0ed3-af44-4f44-8a7f-02a000000002";
  EXPECT_TRUE(extract_uuids(text).empty());
}

TEST(Identifiers, MacWithSeparators) {
  const auto macs = extract_macs("serial 9c:8e:cd:0a:33:1b end");
  ASSERT_EQ(macs.size(), 1u);
  EXPECT_EQ(macs[0], "9c:8e:cd:0a:33:1b");
  EXPECT_EQ(extract_macs("9C-8E-CD-0A-33-1B").size(), 1u);
}

TEST(Identifiers, BareMacRequiresOuiMatch) {
  // Without an expected OUI, bare hex is never matched (false positives).
  EXPECT_TRUE(extract_macs("deadbeefcafe").empty());
  // With a matching OUI, it is.
  const auto macs = extract_macs("id=deadbeefcafe", 0xdeadbe);
  ASSERT_EQ(macs.size(), 1u);
  EXPECT_EQ(macs[0], "de:ad:be:ef:ca:fe");
  // Mismatched OUI filters it out.
  EXPECT_TRUE(extract_macs("id=deadbeefcafe", 0x02a000).empty());
}

TEST(Identifiers, CombinedExtraction) {
  const std::string text =
      "Jane's Roku uuid:00000000-1111-4222-8333-444455556666 at "
      "aa:bb:cc:dd:ee:ff";
  const auto ids = extract_identifiers(text);
  int names = 0, uuids = 0, macs = 0;
  for (const auto& id : ids) {
    names += id.type == IdentifierType::kName;
    uuids += id.type == IdentifierType::kUuid;
    macs += id.type == IdentifierType::kMacAddress;
  }
  EXPECT_EQ(names, 1);
  EXPECT_EQ(uuids, 1);
  EXPECT_EQ(macs, 1);
}

// ----------------------------------------------------------------- overview

std::pair<SimTime, Packet> udp_between(MacAddress src, MacAddress dst,
                                       Ipv4Address sip, Ipv4Address dip,
                                       std::uint16_t sport, std::uint16_t dport,
                                       Bytes payload) {
  Packet p;
  p.eth.src = src;
  p.eth.dst = dst;
  Ipv4Packet ip;
  ip.src = sip;
  ip.dst = dip;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  p.ipv4 = ip;
  UdpDatagram u;
  u.src_port = port(sport);
  u.dst_port = port(dport);
  u.payload = std::move(payload);
  p.udp = u;
  return {SimTime{}, p};
}

TEST(ProtocolUsageTest, AttributesToSourceDevice) {
  std::vector<std::pair<SimTime, Packet>> capture;
  DnsMessage mdns;
  mdns.questions.push_back({DnsName::from_string("_x._tcp.local"),
                            DnsType::kPtr, false});
  capture.push_back(udp_between(mac_n(1), multicast_mac_v4(kMdnsGroupV4),
                                Ipv4Address(192, 168, 10, 5), kMdnsGroupV4,
                                5353, 5353, encode_dns(mdns)));
  const ProtocolUsage usage = protocol_usage(capture);
  const std::set<MacAddress> population = {mac_n(1), mac_n(2)};
  EXPECT_EQ(usage.devices_using(ProtocolLabel::kMdns, population), 1u);
  EXPECT_EQ(usage.devices_using(ProtocolLabel::kSsdp, population), 0u);
  // Out-of-population sources are not counted.
  EXPECT_EQ(usage.devices_using(ProtocolLabel::kMdns, {mac_n(9)}), 0u);
}

TEST(CommGraphTest, BuildsUndirectedEdgesWithProtocols) {
  const std::set<MacAddress> population = {mac_n(1), mac_n(2), mac_n(3)};
  std::vector<std::pair<SimTime, Packet>> capture;
  capture.push_back(udp_between(mac_n(1), mac_n(2), Ipv4Address(192, 168, 10, 5),
                                Ipv4Address(192, 168, 10, 6), 1000, 2000,
                                bytes_of("x")));
  capture.push_back(udp_between(mac_n(2), mac_n(1), Ipv4Address(192, 168, 10, 6),
                                Ipv4Address(192, 168, 10, 5), 2000, 1000,
                                bytes_of("y")));
  // TCP packet between 1 and 2 as well.
  {
    Packet p;
    p.eth.src = mac_n(1);
    p.eth.dst = mac_n(2);
    Ipv4Packet ip;
    ip.src = Ipv4Address(192, 168, 10, 5);
    ip.dst = Ipv4Address(192, 168, 10, 6);
    ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
    p.ipv4 = ip;
    TcpSegment t;
    t.src_port = port(1000);
    t.dst_port = port(443);
    p.tcp = t;
    capture.emplace_back(SimTime{}, p);
  }
  // Multicast is excluded.
  capture.push_back(udp_between(mac_n(3), multicast_mac_v4(kSsdpGroupV4),
                                Ipv4Address(192, 168, 10, 7), kSsdpGroupV4,
                                3000, 1900, bytes_of("z")));

  const CommGraph graph = build_comm_graph(capture, population);
  ASSERT_EQ(graph.edges.size(), 1u);
  const auto* edge = graph.find(mac_n(1), mac_n(2));
  ASSERT_NE(edge, nullptr);
  EXPECT_TRUE(edge->tcp);
  EXPECT_TRUE(edge->udp);
  EXPECT_EQ(edge->packets, 3u);
  EXPECT_EQ(graph.connected_nodes().size(), 2u);
}

// ----------------------------------------------------------------- exposure

TEST(ExposureTest, ArpExposesMac) {
  Packet p;
  p.eth.src = mac_n(1);
  p.eth.dst = MacAddress::kBroadcast;
  p.arp = ArpPacket{};
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{{SimTime{}, p}});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kArp, ExposedData::kMac));
  EXPECT_FALSE(matrix.exposed(ProtocolLabel::kArp, ExposedData::kUuid));
}

TEST(ExposureTest, DhcpHostnameAndClientVersion) {
  DhcpMessage msg;
  msg.is_request = true;
  msg.client_mac = mac_n(4);
  msg.set_message_type(DhcpMessageType::kRequest);
  msg.set_hostname("Ring-Doorbell-Pro");
  msg.set_vendor_class("udhcp 1.14.3-Amazon");  // old client
  const auto capture = udp_between(mac_n(4), MacAddress::kBroadcast,
                                   Ipv4Address(0, 0, 0, 0),
                                   Ipv4Address(255, 255, 255, 255), 68, 67,
                                   encode_dhcp(msg));
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{capture});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kDhcp, ExposedData::kMac));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kDhcp, ExposedData::kDeviceModel));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kDhcp, ExposedData::kOsVersion));
  EXPECT_TRUE(
      matrix.exposed(ProtocolLabel::kDhcp, ExposedData::kOutdatedSoftware));
  EXPECT_FALSE(matrix.exposed(ProtocolLabel::kDhcp, ExposedData::kGeolocation));
}

TEST(ExposureTest, MdnsHostnameWithMacAndDisplayName) {
  DnsMessage msg;
  msg.is_response = true;
  msg.answers.push_back(DnsRecord::make_ptr(
      DnsName::from_string("_hue._tcp.local"),
      DnsName::from_string("Philips Hue - 685F61._hue._tcp.local")));
  msg.answers.push_back(DnsRecord::make_txt(
      DnsName::from_string("Jane's Kitchen._airplay._tcp.local"),
      {"deviceid=aa:bb:cc:dd:ee:ff"}));
  const auto capture = udp_between(mac_n(5), multicast_mac_v4(kMdnsGroupV4),
                                   Ipv4Address(192, 168, 10, 5), kMdnsGroupV4,
                                   5353, 5353, encode_dns(msg));
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{capture});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kMdns, ExposedData::kMac));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kMdns, ExposedData::kDisplayName));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kMdns, ExposedData::kDeviceModel));
}

TEST(ExposureTest, SsdpUuidAndDeprecatedUpnp) {
  SsdpMessage msg;
  msg.kind = SsdpKind::kNotify;
  msg.search_target = "upnp:rootdevice";
  msg.usn = "uuid:296f0ed3-af44-4f44-8a7f-02a000000002::upnp:rootdevice";
  msg.server = "Linux, UPnP/1.0, Private UPnP SDK";
  const auto capture = udp_between(mac_n(6), multicast_mac_v4(kSsdpGroupV4),
                                   Ipv4Address(192, 168, 10, 6), kSsdpGroupV4,
                                   50000, 1900, encode_ssdp(msg));
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{capture});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kSsdp, ExposedData::kUuid));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kSsdp, ExposedData::kOsVersion));
  EXPECT_TRUE(
      matrix.exposed(ProtocolLabel::kSsdp, ExposedData::kOutdatedSoftware));
}

TEST(ExposureTest, TuyaGwidAndProductKey) {
  TuyaDiscovery d;
  d.gw_id = "86200001ae90d6d48d2d";
  d.product_key = "keymwyws7ntafnwq";
  const auto capture = udp_between(mac_n(7), MacAddress::kBroadcast,
                                   Ipv4Address(192, 168, 10, 7),
                                   Ipv4Address(192, 168, 10, 255), 40000, 6666,
                                   encode_tuya_discovery(d));
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{capture});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kTuyaLp, ExposedData::kGwId));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kTuyaLp, ExposedData::kProductKey));
}

TEST(ExposureTest, TplinkSysinfoExposesGeolocationAndOemId) {
  TplinkSysinfo info;
  info.model = "HS110";
  info.mac = "02:a0:03:01:02:03";
  info.oem_id = "FFF22CFF774A0B89F7624BFC6F50D5DE";
  info.latitude = 42.33;
  info.longitude = -71.08;
  const auto capture = udp_between(mac_n(8), mac_n(9),
                                   Ipv4Address(192, 168, 10, 8),
                                   Ipv4Address(192, 168, 10, 9), 9999, 50000,
                                   encode_tplink_udp(info.to_json()));
  const auto matrix = analyze_exposure(std::vector<std::pair<SimTime, Packet>>{capture});
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kTplinkShp, ExposedData::kMac));
  EXPECT_TRUE(matrix.exposed(ProtocolLabel::kTplinkShp, ExposedData::kOemId));
  EXPECT_TRUE(
      matrix.exposed(ProtocolLabel::kTplinkShp, ExposedData::kGeolocation));
  EXPECT_TRUE(
      matrix.exposed(ProtocolLabel::kTplinkShp, ExposedData::kDeviceModel));
}

TEST(ExposureTest, TableShapeHelpers) {
  EXPECT_EQ(exposure_protocols().size(), 6u);
  EXPECT_EQ(exposure_data_types().size(), 10u);
  EXPECT_EQ(to_string(ExposedData::kProductKey), "Prod.Key");
}

}  // namespace
}  // namespace roomnet
