// Tests for the crowdsourced-dataset substrate: SHA-256/HMAC, the dataset
// generator's calibration, the entropy analysis, and device inference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "crowd/entropy.hpp"
#include "crowd/inference.hpp"
#include "crowd/geocode.hpp"
#include "crowd/inspector.hpp"
#include "netcore/sha256.hpp"

namespace roomnet {
namespace {

// ------------------------------------------------------------------ sha256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(sha256_hex(BytesView(bytes_of(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex(BytesView(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex(BytesView(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  // One million 'a' characters (FIPS test): well-known digest.
  const Bytes input(1000000, 'a');
  EXPECT_EQ(to_hex(BytesView(sha256(BytesView(input)))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths 55, 56, 63, 64 hit all padding paths; verify via prefix property
  // (distinct digests, deterministic).
  std::set<std::string> digests;
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    digests.insert(sha256_hex(BytesView(Bytes(n, 'x'))));
  }
  EXPECT_EQ(digests.size(), 5u);
}

TEST(HmacSha256, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256_hex(BytesView(key), BytesView(bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: "Jefe" / "what do ya want for nothing?".
  EXPECT_EQ(hmac_sha256_hex(BytesView(bytes_of("Jefe")),
                            BytesView(bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 3: 20x0xaa key, 50x0xdd message.
  EXPECT_EQ(hmac_sha256_hex(BytesView(Bytes(20, 0xaa)), BytesView(Bytes(50, 0xdd))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6 (131-byte key).
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_sha256_hex(
                BytesView(key),
                BytesView(bytes_of("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --------------------------------------------------------------- generator

class DatasetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2023);
    dataset_ = new InspectorDataset(generate_inspector_dataset(rng));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static InspectorDataset* dataset_;
};
InspectorDataset* DatasetFixture::dataset_ = nullptr;

TEST_F(DatasetFixture, MarginalsMatchPaper) {
  EXPECT_EQ(dataset_->household_count, 3860u);
  EXPECT_EQ(dataset_->devices.size(), 12669u);
  EXPECT_GE(dataset_->products.size(), 264u);
  EXPECT_GE(dataset_->vendors().size(), 100u);

  // Median devices per household == 3 (§6.3).
  auto sizes_map = dataset_->household_sizes();
  std::vector<std::size_t> sizes;
  for (const auto& [hh, n] : sizes_map) sizes.push_back(n);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[sizes.size() / 2], 3u);
}

TEST_F(DatasetFixture, DeviceIdsAreHmacPseudonyms) {
  // 16 hex chars, unique across devices with overwhelming probability.
  std::set<std::string> ids;
  for (const auto& device : dataset_->devices) {
    EXPECT_EQ(device.device_id.size(), 16u);
    ids.insert(device.device_id);
  }
  EXPECT_EQ(ids.size(), dataset_->devices.size());
}

TEST_F(DatasetFixture, ExposureClassesPopulated) {
  std::map<int, std::size_t> products_by_count;
  for (const auto& product : dataset_->products)
    ++products_by_count[product.exposure.count()];
  EXPECT_EQ(products_by_count[0], 154u + (dataset_->products.size() - 264u));
  EXPECT_GT(products_by_count[1], 50u);
  EXPECT_GT(products_by_count[2], 10u);
  EXPECT_EQ(products_by_count[3], 1u);  // the single Roku-like product
}

TEST_F(DatasetFixture, PayloadsCarryTheDeclaredIdentifiers) {
  int checked = 0;
  for (const auto& device : dataset_->devices) {
    const ProductProfile& product = dataset_->product_of(device);
    if (product.exposure.count() == 0) continue;
    const auto ids = device_identifiers(device);
    bool has_name = false, has_uuid = false, has_mac = false;
    for (const auto& id : ids) {
      has_name |= id.type == IdentifierType::kName;
      has_uuid |= id.type == IdentifierType::kUuid;
      has_mac |= id.type == IdentifierType::kMacAddress;
    }
    EXPECT_EQ(has_name, product.exposure.name) << device.device_id;
    EXPECT_EQ(has_uuid, product.exposure.uuid) << device.device_id;
    EXPECT_EQ(has_mac, product.exposure.mac) << device.device_id;
    if (++checked > 500) break;  // sample is plenty
  }
  EXPECT_GT(checked, 100);
}

// ----------------------------------------------------------------- entropy

TEST_F(DatasetFixture, FingerprintAnalysisShape) {
  const FingerprintAnalysis analysis = fingerprint_households(*dataset_);
  ASSERT_FALSE(analysis.rows.empty());

  // Row 0: households exposing nothing.
  const FingerprintRow& none = analysis.rows.front();
  EXPECT_EQ(none.type_count, 0);
  EXPECT_GT(none.households, 500u);

  // Find the UUID-only row: largest single-type class (paper: 2,814 hse).
  const FingerprintRow* uuid_row = nullptr;
  const FingerprintRow* mac_row = nullptr;
  const FingerprintRow* all_row = nullptr;
  const FingerprintRow* uuid_mac_row = nullptr;
  for (const auto& row : analysis.rows) {
    if (row.types == ExposureClass{false, true, false}) uuid_row = &row;
    if (row.types == ExposureClass{false, false, true}) mac_row = &row;
    if (row.types == ExposureClass{false, true, true}) uuid_mac_row = &row;
    if (row.types == ExposureClass{true, true, true}) all_row = &row;
  }
  ASSERT_NE(uuid_row, nullptr);
  ASSERT_NE(mac_row, nullptr);
  ASSERT_NE(uuid_mac_row, nullptr);

  // Shape: UUID-only is the dominant class; UUID+MAC sizable; uniqueness
  // is high (>85%) but not 100% (degenerate constants).
  EXPECT_GT(uuid_row->households, mac_row->households);
  EXPECT_GT(uuid_row->households, 1500u);
  EXPECT_GT(uuid_mac_row->households, 300u);
  EXPECT_GT(uuid_row->unique_pct(), 85.0);
  EXPECT_LT(uuid_row->unique_pct(), 100.0);
  EXPECT_GT(uuid_mac_row->unique_pct(), uuid_row->unique_pct() - 5);

  // Entropy grows with combination richness (Table 2's ordering).
  EXPECT_GT(uuid_mac_row->entropy_bits, mac_row->entropy_bits);
  if (all_row != nullptr && all_row->households > 0) {
    EXPECT_GT(all_row->unique_pct(), 99.0);
  }
}

TEST_F(DatasetFixture, EntropyIsLogOfDistinctValues) {
  const FingerprintAnalysis analysis = fingerprint_households(*dataset_);
  for (const auto& row : analysis.rows) {
    if (row.type_count == 0) continue;
    // Entropy can never exceed log2(households in the class).
    EXPECT_LE(row.entropy_bits,
              std::log2(static_cast<double>(row.households)) + 1e-9);
    EXPECT_GE(row.entropy_bits, 0.0);
  }
}

TEST_F(DatasetFixture, AccumulatorFedIncrementallyMatchesWrapper) {
  // The fleet reducer feeds DeviceFingerprintRows one at a time; the
  // dataset wrapper must be a thin shell over the same accumulator. Build
  // the rows by hand (exactly what the wrapper does internally) and compare
  // every field of every row, entropy doubles included.
  FingerprintAccumulator accumulator;
  for (const auto& device : dataset_->devices) {
    DeviceFingerprintRow row;
    row.household = device.household;
    row.product = device.product_index;
    row.vendor = dataset_->products[device.product_index].vendor;
    row.ids = device_identifiers(device);
    accumulator.add(row);
  }
  const FingerprintAnalysis incremental = accumulator.finish();
  const FingerprintAnalysis wrapped = fingerprint_households(*dataset_);

  const auto expect_equal_rows = [](const std::vector<FingerprintRow>& a,
                                    const std::vector<FingerprintRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].types, b[i].types) << "row " << i;
      EXPECT_EQ(a[i].type_count, b[i].type_count) << "row " << i;
      EXPECT_EQ(a[i].products, b[i].products) << "row " << i;
      EXPECT_EQ(a[i].vendors, b[i].vendors) << "row " << i;
      EXPECT_EQ(a[i].devices, b[i].devices) << "row " << i;
      EXPECT_EQ(a[i].households, b[i].households) << "row " << i;
      EXPECT_EQ(a[i].uniquely_identified, b[i].uniquely_identified)
          << "row " << i;
      EXPECT_EQ(a[i].entropy_bits, b[i].entropy_bits) << "row " << i;
    }
  };
  expect_equal_rows(incremental.rows, wrapped.rows);
  expect_equal_rows(incremental.by_count, wrapped.by_count);

  // finish() is non-destructive: accumulating more afterwards still works.
  DeviceFingerprintRow extra;
  extra.household = 999999;
  extra.product = 0;
  extra.vendor = "ExtraVendor";
  extra.ids = {{IdentifierType::kUuid, "0000-extra"}};
  accumulator.add(extra);
  const FingerprintAnalysis grown = accumulator.finish();
  std::size_t devices_before = 0, devices_after = 0;
  for (const auto& row : wrapped.rows) devices_before += row.devices;
  for (const auto& row : grown.rows) devices_after += row.devices;
  EXPECT_EQ(devices_after, devices_before + 1);
}

TEST_F(DatasetFixture, AccumulatorMergeOfShardPartialsMatchesOneFeed) {
  // The fleet reducer splits households across shard-local accumulators and
  // merges them in shard order. Partition this dataset's devices by
  // household parity (households never span shards, matching the fleet's
  // contract), merge, and demand field-for-field equality with a single
  // sequential feed — entropy doubles included.
  FingerprintAccumulator sequential, even, odd;
  for (const auto& device : dataset_->devices) {
    DeviceFingerprintRow row;
    row.household = device.household;
    row.product = device.product_index;
    row.vendor = dataset_->products[device.product_index].vendor;
    row.ids = device_identifiers(device);
    sequential.add(row);
    (device.household % 2 == 0 ? even : odd).add(row);
  }
  FingerprintAccumulator merged;
  merged.merge(even);
  merged.merge(odd);
  const FingerprintAnalysis expected = sequential.finish();
  const FingerprintAnalysis actual = merged.finish();

  const auto expect_equal_rows = [](const std::vector<FingerprintRow>& a,
                                    const std::vector<FingerprintRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].types, b[i].types) << "row " << i;
      EXPECT_EQ(a[i].products, b[i].products) << "row " << i;
      EXPECT_EQ(a[i].vendors, b[i].vendors) << "row " << i;
      EXPECT_EQ(a[i].devices, b[i].devices) << "row " << i;
      EXPECT_EQ(a[i].households, b[i].households) << "row " << i;
      EXPECT_EQ(a[i].uniquely_identified, b[i].uniquely_identified)
          << "row " << i;
      EXPECT_EQ(a[i].entropy_bits, b[i].entropy_bits) << "row " << i;
    }
  };
  expect_equal_rows(expected.rows, actual.rows);
  expect_equal_rows(expected.by_count, actual.by_count);
}

// --------------------------------------------------------------- inference

TEST_F(DatasetFixture, InferenceRecoversVendorsFromMetadata) {
  const DeviceInference inference(*dataset_);
  const auto accuracy = inference.evaluate(*dataset_);
  EXPECT_GT(accuracy.coverage(), 0.95);          // hostnames nearly always help
  EXPECT_GT(accuracy.vendor_accuracy(), 0.90);   // lexicon matches the truth
  EXPECT_EQ(accuracy.total, dataset_->devices.size());
}

TEST_F(DatasetFixture, InferenceUsesUserLabelFirst) {
  const DeviceInference inference(*dataset_);
  InspectorDevice device = dataset_->devices[0];
  const ProductProfile& product = dataset_->product_of(device);
  device.user_label = product.vendor + " " + product.category;
  const auto identity = inference.infer(device);
  EXPECT_EQ(identity.vendor, product.vendor);
  EXPECT_EQ(identity.category, product.category);
}

TEST(InspectorDeterminism, SameSeedSameDataset) {
  Rng a(7), b(7);
  InspectorConfig small;
  small.households = 200;
  small.devices = 640;
  const auto da = generate_inspector_dataset(a, small);
  const auto db = generate_inspector_dataset(b, small);
  ASSERT_EQ(da.devices.size(), db.devices.size());
  for (std::size_t i = 0; i < da.devices.size(); i += 37)
    EXPECT_EQ(da.devices[i].device_id, db.devices[i].device_id);
}

// ----------------------------------------------------------------- geocode

TEST(Geocode, DistanceSanity) {
  const GeoPoint boston{42.3601, -71.0589};
  const GeoPoint cambridge{42.3736, -71.1097};
  const double d = boston.distance_m(cambridge);
  EXPECT_GT(d, 3500);
  EXPECT_LT(d, 5500);
  EXPECT_NEAR(boston.distance_m(boston), 0, 1e-6);
}

TEST(Geocode, HarvestedBssidResolvesToStreetAddress) {
  // The §2 attack chain: an app harvests the router BSSID (no dangerous
  // permission needed, §6.1), queries a wardriving database, and gets the
  // home's location with street-level precision.
  Rng rng(77);
  const auto home_bssid = MacAddress::parse("02:a0:ff:00:00:01").value();
  const GeoPoint home{42.337681, -71.087036};
  const GeocodeIndex index =
      build_wardriving_index(rng, 50000, home_bssid, home);
  EXPECT_EQ(index.size(), 50000u);
  ASSERT_TRUE(index.lookup(home_bssid).has_value());
  EXPECT_TRUE(index.resolves_within(home_bssid, home, 50));
  // A BSSID the wardrivers never saw resolves to nothing.
  EXPECT_EQ(index.lookup(MacAddress::from_u64(0xdead)), std::nullopt);
}

TEST(Geocode, UnrelatedApsDoNotCollideWithHome) {
  Rng rng(78);
  const auto home_bssid = MacAddress::parse("02:a0:ff:00:00:01").value();
  const GeoPoint home{42.337681, -71.087036};
  const GeocodeIndex index = build_wardriving_index(rng, 1000, home_bssid, home);
  // Only the home AP should resolve within 50 m of the home.
  EXPECT_TRUE(index.resolves_within(home_bssid, home, 50));
}

}  // namespace
}  // namespace roomnet
