// Tests for roomnet::telemetry: counter/gauge/histogram semantics, labeled
// families, log-2 bucket boundaries, tracer ring-buffer wraparound, and
// exporter golden strings.
#include <gtest/gtest.h>

#include <thread>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace roomnet::telemetry {
namespace {

// ----------------------------------------------------------------- Counter

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// ------------------------------------------------------------------- Gauge

TEST(Gauge, SetAddAndHighWater) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.record_max(5);
  EXPECT_EQ(g.value(), 7);  // 5 < 7: high-water unchanged
  g.record_max(19);
  EXPECT_EQ(g.value(), 19);
}

// --------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundariesAreLog2) {
  // Bucket i spans [2^(i-1), 2^i): 0→b0, 1→b1, 2..3→b2, 4..7→b3, …
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  // Saturation into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBuckets - 1);
  // Upper bounds are 2^i - 1.
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(11), 2047u);
}

TEST(Histogram, ObserveTracksCountSumAndBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(900);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 906u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);  // 900 ∈ [512, 1024)
  EXPECT_EQ(h.bucket(5), 0u);
}

// ---------------------------------------------------------------- Registry

TEST(Registry, LabelFamiliesAreDistinctAndStable) {
  Registry r;
  Counter& plain = r.counter("roomnet_test_frames_total");
  Counter& udp = r.counter("roomnet_test_frames_total", {{"proto", "udp"}});
  Counter& tcp = r.counter("roomnet_test_frames_total", {{"proto", "tcp"}});
  EXPECT_NE(&plain, &udp);
  EXPECT_NE(&udp, &tcp);
  udp.inc(5);
  // The same (name, labels) pair resolves to the same instance — and label
  // order does not matter.
  EXPECT_EQ(
      &r.counter("roomnet_test_frames_total", {{"proto", "udp"}}), &udp);
  Counter& multi =
      r.counter("roomnet_test_multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&r.counter("roomnet_test_multi", {{"a", "1"}, {"b", "2"}}),
            &multi);
  EXPECT_EQ(udp.value(), 5u);
}

TEST(Registry, SnapshotIsDeterministicallyOrdered) {
  Registry r;
  r.counter("roomnet_b").inc();
  r.counter("roomnet_a", {{"x", "2"}}).inc();
  r.counter("roomnet_a", {{"x", "1"}}).inc();
  r.gauge("roomnet_c").set(-7);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "roomnet_a");
  EXPECT_EQ(snap[0].labels, (Labels{{"x", "1"}}));
  EXPECT_EQ(snap[1].labels, (Labels{{"x", "2"}}));
  EXPECT_EQ(snap[2].name, "roomnet_b");
  EXPECT_EQ(snap[3].name, "roomnet_c");
  EXPECT_EQ(snap[3].gauge, -7);
}

TEST(Registry, ResetAllZeroesEverything) {
  Registry r;
  r.counter("c").inc(9);
  r.gauge("g").set(9);
  r.histogram("h").observe(9);
  r.reset_all();
  EXPECT_EQ(r.counter("c").value(), 0u);
  EXPECT_EQ(r.gauge("g").value(), 0);
  EXPECT_EQ(r.histogram("h").count(), 0u);
}

// --------------------------------------------------------------- Exporters

TEST(Exporters, PrometheusGoldenString) {
  Registry r;
  r.counter("roomnet_test_frames_total").inc(3);
  r.counter("roomnet_test_frames_total", {{"proto", "udp"}}).inc(2);
  r.gauge("roomnet_test_queue_depth").set(17);
  const std::string expected =
      "# TYPE roomnet_test_frames_total counter\n"
      "roomnet_test_frames_total 3\n"
      "roomnet_test_frames_total{proto=\"udp\"} 2\n"
      "# TYPE roomnet_test_queue_depth gauge\n"
      "roomnet_test_queue_depth 17\n";
  EXPECT_EQ(to_prometheus(r), expected);
}

TEST(Exporters, PrometheusHistogramIsCumulative) {
  Registry r;
  Histogram& h = r.histogram("roomnet_test_latency_us");
  h.observe(0);
  h.observe(3);
  h.observe(3);
  const std::string out = to_prometheus(r);
  EXPECT_NE(out.find("# TYPE roomnet_test_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_latency_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  // Bucket le="1" is cumulative: still only the single zero observation.
  EXPECT_NE(out.find("roomnet_test_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_latency_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_latency_us_sum 6\n"), std::string::npos);
  EXPECT_NE(out.find("roomnet_test_latency_us_count 3\n"), std::string::npos);
}

TEST(Exporters, PrometheusEscapesHostileLabelValues) {
  // The exposition format escapes exactly backslash, double-quote, and
  // newline inside label values; a raw quote or newline would corrupt the
  // sample line for any conforming scraper.
  Registry r;
  r.counter("roomnet_test_hostile_total", {{"stage", "a\\b\"c\nd"}}).inc();
  const std::string out = to_prometheus(r);
  EXPECT_NE(
      out.find("roomnet_test_hostile_total{stage=\"a\\\\b\\\"c\\nd\"} 1\n"),
      std::string::npos);
  // The raw (unescaped) newline must not survive inside the label block.
  EXPECT_EQ(out.find("c\nd"), std::string::npos);
}

TEST(Exporters, PrometheusHistogramInfBucketEqualsCount) {
  Registry r;
  Histogram& h = r.histogram("roomnet_test_inf_us");
  // Span the full range, including a value that saturates the last bucket:
  // the +Inf bucket is cumulative over every bucket and must equal _count.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{1} << 20, ~std::uint64_t{0}})
    h.observe(v);
  const std::string out = to_prometheus(r);
  EXPECT_NE(out.find("roomnet_test_inf_us_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_inf_us_count 5\n"), std::string::npos);
}

TEST(Exporters, JsonGoldenString) {
  Registry r;
  r.counter("roomnet_test_total", {{"proto", "udp"}}).inc(2);
  const std::string expected =
      "[\n"
      "  {\"name\":\"roomnet_test_total\",\"labels\":{\"proto\":\"udp\"},"
      "\"kind\":\"counter\",\"value\":2}\n"
      "]\n";
  EXPECT_EQ(to_json(r), expected);
}

// --------------------------------------------------------------- Quantiles

namespace {
MetricSnapshot snapshot_of(const Registry& r, const std::string& name) {
  for (const MetricSnapshot& m : r.snapshot())
    if (m.name == name) return m;
  ADD_FAILURE() << "no snapshot named " << name;
  return {};
}
}  // namespace

TEST(Exporters, HistogramQuantileInterpolatesWithinBucket) {
  Registry r;
  Histogram& h = r.histogram("roomnet_test_lat_us");
  // 100 observations of 12: all mass in bucket 4, value range [8, 15].
  for (int i = 0; i < 100; ++i) h.observe(12);
  const MetricSnapshot m = snapshot_of(r, "roomnet_test_lat_us");
  // target rank q*100 lands fraction q into the bucket: 8 + q * (15 - 8).
  EXPECT_EQ(histogram_quantile(m, 0.50), 11u);
  EXPECT_EQ(histogram_quantile(m, 0.99), 14u);
  EXPECT_EQ(histogram_quantile(m, 1.00), 15u);
}

TEST(Exporters, HistogramQuantileWalksCumulativeAcrossBuckets) {
  Registry r;
  Histogram& h = r.histogram("roomnet_test_walk_us");
  h.observe(1);                                  // bucket 1: 1 obs
  h.observe(2);                                  // bucket 2: 2 obs
  h.observe(3);
  for (std::uint64_t v = 4; v <= 7; ++v) h.observe(v);  // bucket 3: 4 obs
  const MetricSnapshot m = snapshot_of(r, "roomnet_test_walk_us");
  // count=7; rank 3.5 lands 0.125 into bucket 3's [4, 7] span.
  EXPECT_EQ(histogram_quantile(m, 0.50), 4u);
  // rank 0.7 is inside bucket 1 (cumulative 1 >= 0.7): exactly 1.
  EXPECT_EQ(histogram_quantile(m, 0.10), 1u);
}

TEST(Exporters, HistogramQuantileEdgeCases) {
  Registry r;
  Histogram& empty = r.histogram("roomnet_test_empty_us");
  (void)empty;
  EXPECT_EQ(histogram_quantile(snapshot_of(r, "roomnet_test_empty_us"), 0.5),
            0u);
  // A counter snapshot is not a histogram: quantile is defined as 0.
  r.counter("roomnet_test_not_hist_total").inc();
  EXPECT_EQ(
      histogram_quantile(snapshot_of(r, "roomnet_test_not_hist_total"), 0.5),
      0u);
  // The overflow bucket has no finite upper bound: clamp to its lower edge.
  Histogram& sat = r.histogram("roomnet_test_sat_us");
  sat.observe(~std::uint64_t{0});
  EXPECT_EQ(histogram_quantile(snapshot_of(r, "roomnet_test_sat_us"), 0.99),
            std::uint64_t{1} << (Histogram::kBuckets - 2));
}

TEST(Exporters, PrometheusEmitsQuantileGaugeFamilies) {
  Registry r;
  Histogram& h = r.histogram("roomnet_test_q_us", {{"stage", "idle"}});
  for (int i = 0; i < 100; ++i) h.observe(12);
  const std::string out = to_prometheus(r);
  EXPECT_NE(out.find("# TYPE roomnet_test_q_us_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_q_us_p50{stage=\"idle\"} 11\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE roomnet_test_q_us_p95 gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("roomnet_test_q_us_p99{stage=\"idle\"} 14\n"),
            std::string::npos);
  // Derived families come after the primaries, so the histogram's own
  // sample group stays contiguous.
  EXPECT_LT(out.find("roomnet_test_q_us_count"),
            out.find("roomnet_test_q_us_p50"));
}

// ------------------------------------------------------------------ Tracer

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record_instant("x", "test");
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, RingBufferWrapsKeepingNewest) {
  Tracer t;
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) t.record_instant("ev" + std::to_string(i), "t");
  EXPECT_EQ(t.recorded(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "ev2");  // oldest surviving
  EXPECT_EQ(events[3].name, "ev5");  // newest
}

TEST(Tracer, ScopedSpanRecordsCompleteEventWithSimTime) {
  Tracer t;
  t.enable(16);
  SimTime sim = SimTime::from_seconds(5);
  t.set_sim_clock([&sim] { return sim; });
  {
    ScopedSpan span("stage", "test", t);
    sim = SimTime::from_seconds(9);  // virtual time advances inside the span
  }
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].sim_start_us, SimTime::from_seconds(5).us());
  EXPECT_EQ(events[0].sim_end_us, SimTime::from_seconds(9).us());
}

TEST(Tracer, ChromeJsonExportCarriesSpans) {
  Tracer t;
  t.enable(16);
  t.set_sim_clock([] { return SimTime::from_ms(1); });
  { ScopedSpan span("idle", "pipeline", t); }
  t.record_instant("marker", "pipeline");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"idle\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_start_us\":1000"), std::string::npos);
}

TEST(Tracer, RingOverwriteKeepsEmissionOrderAcrossMultipleWraps) {
  Tracer t;
  t.enable(/*capacity=*/3);
  for (int i = 0; i < 11; ++i)
    t.record_instant("ev" + std::to_string(i), "t");
  EXPECT_EQ(t.recorded(), 11u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "ev8");
  EXPECT_EQ(events[1].name, "ev9");
  EXPECT_EQ(events[2].name, "ev10");
}

TEST(Tracer, EventsFromDistinctThreadsGetDistinctTids) {
  Tracer t;
  t.enable(16);
  t.record_instant("main-ev", "t");
  std::thread([&t] {
    t.set_thread_name("pool-worker-1");
    t.record_instant("worker-ev", "t");
  }).join();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // The worker's registered name attaches to the worker's tid.
  bool named = false;
  for (const auto& [tid, name] : t.thread_names())
    named |= tid == events[1].tid && name == "pool-worker-1";
  EXPECT_TRUE(named);
}

TEST(Tracer, ChromeJsonEmitsThreadNameMetadataAndPerThreadTids) {
  Tracer t;
  t.enable(16);
  t.set_thread_name("main");
  { ScopedSpan span("stage", "pipeline", t); }
  std::thread([&t] {
    t.set_thread_name("pool-worker-1");
    t.record_instant("task", "exec");
  }).join();
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"main\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"pool-worker-1\"}"),
            std::string::npos);
  // The worker's event rides its own track, not the hardcoded tid 1.
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Tracer, SpanStartedWhileDisabledStaysSilent) {
  Tracer t;
  std::optional<ScopedSpan> span;
  span.emplace("late", "test", t);
  t.enable(8);
  span.reset();  // tracer was off at construction: nothing recorded
  EXPECT_EQ(t.recorded(), 0u);
}

}  // namespace
}  // namespace roomnet::telemetry
