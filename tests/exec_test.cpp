// roomnet::exec — deterministic parallel runtime tests: ordered reduction,
// index-order maps, empty ranges, exception propagation, nested fork-join
// regions, and the pool telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/task_pool.hpp"
#include "telemetry/metrics.hpp"

namespace roomnet::exec {
namespace {

TEST(ExecPool, ChunkBoundsCoverRangeContiguously) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 8u}) {
      if (chunks > n && n != 0) continue;
      std::size_t expected_begin = 0;
      const std::size_t effective = n == 0 ? 0 : chunks;
      for (std::size_t i = 0; i < effective; ++i) {
        const auto [begin, end] = chunk_bounds(n, chunks, i);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      if (effective != 0) {
        EXPECT_EQ(expected_begin, n);
      }
    }
  }
}

TEST(ExecPool, DefaultThreadsRespectsEnv) {
  ASSERT_EQ(setenv("ROOMNET_THREADS", "3", 1), 0);
  EXPECT_EQ(TaskPool::default_threads(), 3u);
  ASSERT_EQ(setenv("ROOMNET_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(TaskPool::default_threads(), 1u);  // falls back to hardware
  ASSERT_EQ(setenv("ROOMNET_THREADS", "999999", 1), 0);
  EXPECT_EQ(TaskPool::default_threads(), 256u);  // clamped
  ASSERT_EQ(unsetenv("ROOMNET_THREADS"), 0);
  EXPECT_GE(TaskPool::default_threads(), 1u);
}

TEST(ExecPool, DrainsSubmittedTasksBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    TaskPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ExecPool, SingleThreadPoolRunsSubmitInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  int ran = 0;
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // already done: no workers, no queue
}

TEST(ExecParallel, ForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    TaskPool pool(threads);
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ExecParallel, MapPreservesIndexOrder) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    TaskPool pool(threads);
    const auto out =
        parallel_map(pool, 5000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 5000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ExecParallel, ReductionIsOrderedAndWorkerCountInvariant) {
  // Concatenation is order-sensitive: any out-of-order merge would scramble
  // the sequence. Every worker count must produce 0,1,2,...,n-1 exactly.
  const std::size_t n = 4099;
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0u);
  for (const std::size_t threads : {1u, 2u, 3u, 4u, 7u}) {
    TaskPool pool(threads);
    const auto got = parallel_reduce(
        pool, n, std::vector<std::size_t>{},
        [](std::vector<std::size_t>& acc, std::size_t i) { acc.push_back(i); },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ExecParallel, EmptyAndTinyRanges) {
  TaskPool pool(4);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
  EXPECT_TRUE(parallel_map(pool, 0, [](std::size_t i) { return i; }).empty());
  EXPECT_EQ(parallel_reduce(
                pool, 0, 42,
                [](int& acc, std::size_t) { ++acc; },
                [](int& acc, int&& part) { acc += part; }),
            42);
  // n smaller than the worker count still covers every index once.
  const auto tiny = parallel_map(pool, 2, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(tiny, (std::vector<std::size_t>{1, 2}));
}

TEST(ExecParallel, ExceptionFromLowestIndexPropagates) {
  for (const std::size_t threads : {1u, 4u}) {
    TaskPool pool(threads);
    try {
      parallel_for(pool, 1000, [](std::size_t i) {
        if (i == 137 || i == 894)
          throw std::runtime_error("boom@" + std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      // 137 and 894 land in different chunks for every tested worker count,
      // and the runtime rethrows the lowest-chunk failure deterministically.
      EXPECT_STREQ(e.what(), "boom@137") << "threads=" << threads;
    }
    // The pool survives the failed region and keeps working.
    const auto ok = parallel_map(pool, 64, [](std::size_t i) { return i; });
    EXPECT_EQ(ok.size(), 64u);
  }
}

TEST(ExecParallel, NestedRegionsOnTheSamePoolDoNotDeadlock) {
  TaskPool pool(4);
  // Outer region saturates the pool; each task opens an inner region on the
  // SAME pool. The calling thread always participates in its own region, so
  // this makes progress even with every worker busy.
  const auto totals = parallel_map(pool, 8, [&](std::size_t outer) {
    const std::size_t sum = parallel_reduce(
        pool, 100, std::size_t{0},
        [](std::size_t& acc, std::size_t i) { acc += i; },
        [](std::size_t& acc, std::size_t&& part) { acc += part; });
    return outer * 1000 + sum;
  });
  ASSERT_EQ(totals.size(), 8u);
  for (std::size_t outer = 0; outer < totals.size(); ++outer)
    EXPECT_EQ(totals[outer], outer * 1000 + 4950) << outer;
}

TEST(ExecPool, TelemetryCountersAdvance) {
  auto& registry = telemetry::Registry::global();
  const auto submitted_before =
      registry.counter("roomnet_exec_tasks_submitted_total").value();
  const auto completed_before =
      registry.counter("roomnet_exec_tasks_completed_total").value();
  {
    TaskPool pool(4);
    parallel_for(pool, 1000, [](std::size_t) {});
  }
  EXPECT_GT(registry.counter("roomnet_exec_tasks_submitted_total").value(),
            submitted_before);
  EXPECT_GT(registry.counter("roomnet_exec_tasks_completed_total").value(),
            completed_before);
}

}  // namespace
}  // namespace roomnet::exec
