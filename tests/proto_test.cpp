// Unit tests for the application-protocol codecs.
#include <gtest/gtest.h>

#include "netcore/rng.hpp"
#include "proto/coap.hpp"
#include "proto/dhcp.hpp"
#include "proto/dns.hpp"
#include "proto/http.hpp"
#include "proto/json.hpp"
#include "proto/dhcpv6.hpp"
#include "proto/matter.hpp"
#include "proto/media.hpp"
#include "proto/netbios.hpp"
#include "proto/ssdp.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"

namespace roomnet {
namespace {

// -------------------------------------------------------------------- JSON

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->is_null());
  EXPECT_EQ(json::parse("true")->as_bool(), true);
  EXPECT_EQ(json::parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5")->as_number(), -3.5);
  EXPECT_EQ(json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const auto v = json::parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const auto* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v->find_path("d.e")->is_null());
  EXPECT_EQ(v->find_path("d.missing"), nullptr);
}

TEST(Json, EscapesRoundTrip) {
  json::Object o;
  o.emplace("s", "line\nquote\"back\\slash\ttab");
  const json::Value v{std::move(o)};
  const auto back = json::parse(v.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

TEST(Json, UnicodeEscapes) {
  const auto v = json::parse(R"("Aé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformed) {
  EXPECT_EQ(json::parse("{"), std::nullopt);
  EXPECT_EQ(json::parse("[1,2,"), std::nullopt);
  EXPECT_EQ(json::parse("{\"a\":}"), std::nullopt);
  EXPECT_EQ(json::parse("tru"), std::nullopt);
  EXPECT_EQ(json::parse("1 2"), std::nullopt);
  EXPECT_EQ(json::parse("\"unterminated"), std::nullopt);
}

TEST(Json, RejectsPathologicalNesting) {
  // A few KiB of '[' used to recurse once per bracket and overflow the
  // stack; the parser now rejects anything nested deeper than its cap.
  std::string bomb(100000, '[');
  EXPECT_EQ(json::parse(bomb), std::nullopt);
  std::string closed = std::string(100000, '[') + std::string(100000, ']');
  EXPECT_EQ(json::parse(closed), std::nullopt);
  std::string objects;
  for (int i = 0; i < 50000; ++i) objects += "{\"a\":";
  EXPECT_EQ(json::parse(objects), std::nullopt);
  // Sane nesting still parses.
  std::string ok = std::string(32, '[') + "1" + std::string(32, ']');
  EXPECT_TRUE(json::parse(ok).has_value());
}

TEST(Json, DumpIsDeterministic) {
  json::Object o;
  o.emplace("z", 1);
  o.emplace("a", 2);
  EXPECT_EQ(json::Value(std::move(o)).dump(), R"({"a":2,"z":1})");
}

// -------------------------------------------------------------------- DHCP

TEST(Dhcp, RequestRoundTrip) {
  DhcpMessage m;
  m.is_request = true;
  m.xid = 0xdeadbeef;
  m.client_mac = MacAddress::parse("02:a0:00:aa:bb:cc").value();
  m.set_message_type(DhcpMessageType::kRequest);
  m.set_hostname("RingCamera-Pro");
  m.set_vendor_class("udhcp 1.24.2");
  m.set_parameter_request_list({1, 3, 6, 12, 15, 17, 69});
  m.add_ip_option(DhcpOption::kRequestedIp, Ipv4Address(192, 168, 10, 55));

  const auto back = decode_dhcp(BytesView(encode_dhcp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_request);
  EXPECT_EQ(back->xid, 0xdeadbeefu);
  EXPECT_EQ(back->client_mac, m.client_mac);
  EXPECT_EQ(back->message_type(), DhcpMessageType::kRequest);
  EXPECT_EQ(back->hostname(), "RingCamera-Pro");
  EXPECT_EQ(back->vendor_class(), "udhcp 1.24.2");
  EXPECT_EQ(back->parameter_request_list(),
            (std::vector<std::uint8_t>{1, 3, 6, 12, 15, 17, 69}));
}

TEST(Dhcp, OfferCarriesYiaddr) {
  DhcpMessage m;
  m.is_request = false;
  m.yiaddr = Ipv4Address(192, 168, 10, 77);
  m.set_message_type(DhcpMessageType::kOffer);
  m.add_ip_option(DhcpOption::kRouter, Ipv4Address(192, 168, 10, 1));
  m.add_ip_option(DhcpOption::kDnsServer, Ipv4Address(192, 168, 10, 1));
  const auto back = decode_dhcp(BytesView(encode_dhcp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->is_request);
  EXPECT_EQ(back->yiaddr, m.yiaddr);
  ASSERT_NE(back->find_option(DhcpOption::kRouter), nullptr);
}

TEST(Dhcp, RejectsBadCookie) {
  DhcpMessage m;
  m.set_message_type(DhcpMessageType::kDiscover);
  Bytes raw = encode_dhcp(m);
  raw[236] ^= 0xff;  // corrupt magic cookie
  EXPECT_EQ(decode_dhcp(BytesView(raw)), std::nullopt);
}

TEST(Dhcp, RejectsTruncatedOptions) {
  DhcpMessage m;
  m.set_hostname("longhostname");
  Bytes raw = encode_dhcp(m);
  raw.resize(raw.size() - 6);
  EXPECT_EQ(decode_dhcp(BytesView(raw)), std::nullopt);
}

TEST(Dhcp, MissingOptionsReturnEmpty) {
  const auto back = decode_dhcp(BytesView(encode_dhcp(DhcpMessage{})));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->message_type(), std::nullopt);
  EXPECT_EQ(back->hostname(), std::nullopt);
  EXPECT_TRUE(back->parameter_request_list().empty());
}

// --------------------------------------------------------------------- DNS

TEST(DnsName, StringConversion) {
  const auto name = DnsName::from_string("_hue._tcp.local");
  EXPECT_EQ(name.labels,
            (std::vector<std::string>{"_hue", "_tcp", "local"}));
  EXPECT_EQ(name.to_string(), "_hue._tcp.local");
}

TEST(Dns, QueryRoundTrip) {
  DnsMessage m;
  DnsQuestion q;
  q.name = DnsName::from_string("_googlecast._tcp.local");
  q.type = DnsType::kPtr;
  q.unicast_response = true;
  m.questions.push_back(q);
  const auto back = decode_dns(BytesView(encode_dns(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->is_response);
  ASSERT_EQ(back->questions.size(), 1u);
  EXPECT_EQ(back->questions[0].name.to_string(), "_googlecast._tcp.local");
  EXPECT_EQ(back->questions[0].type, DnsType::kPtr);
  EXPECT_TRUE(back->questions[0].unicast_response);
}

TEST(Dns, FullServiceAdvertisementRoundTrip) {
  // A realistic mDNS advertisement: PTR + SRV + TXT + A, as a Philips Hue
  // bridge would answer (Table 5).
  DnsMessage m;
  m.is_response = true;
  m.authoritative = true;
  const auto service = DnsName::from_string("_hue._tcp.local");
  const auto instance = DnsName::from_string("Philips Hue - 685F61._hue._tcp.local");
  const auto host = DnsName::from_string("Philips-hue.local");
  m.answers.push_back(DnsRecord::make_ptr(service, instance));
  SrvData srv;
  srv.port = 443;
  srv.target = host;
  m.answers.push_back(DnsRecord::make_srv(instance, srv));
  m.answers.push_back(DnsRecord::make_txt(
      instance, {"bridgeid=001788fffe685f61", "modelid=BSB002"}));
  m.additional.push_back(DnsRecord::make_a(host, Ipv4Address(192, 168, 10, 12)));

  const Bytes raw = encode_dns(m);
  const auto back = decode_dns(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_response);
  ASSERT_EQ(back->answers.size(), 3u);
  ASSERT_EQ(back->additional.size(), 1u);

  const auto ptr = back->answers[0].ptr();
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->to_string(), instance.to_string());

  const auto srv_back = back->answers[1].srv();
  ASSERT_TRUE(srv_back.has_value());
  EXPECT_EQ(srv_back->port, 443);
  EXPECT_EQ(srv_back->target.to_string(), "Philips-hue.local");

  const auto txt = back->answers[2].txt();
  ASSERT_EQ(txt.size(), 2u);
  EXPECT_EQ(txt[0], "bridgeid=001788fffe685f61");

  const auto a = back->additional[0].a();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Address(192, 168, 10, 12));
}

TEST(Dns, CompressionShrinksRepeatedSuffixes) {
  DnsMessage m;
  m.is_response = true;
  for (int i = 0; i < 6; ++i) {
    m.answers.push_back(DnsRecord::make_ptr(
        DnsName::from_string("_services._dns-sd._udp.local"),
        DnsName::from_string("_instance" + std::to_string(i) + "._tcp.local")));
  }
  const Bytes compressed = encode_dns(m);
  // The shared "._udp.local" suffix should be written once; a rough bound
  // confirms pointers are in use.
  std::size_t plain_estimate = 0;
  for (const auto& rec : m.answers)
    plain_estimate += rec.name.to_string().size() + rec.rdata.size() + 12;
  EXPECT_LT(compressed.size(), plain_estimate);
  const auto back = decode_dns(BytesView(compressed));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->answers.size(), 6u);
  EXPECT_EQ(back->answers[3].name.to_string(), "_services._dns-sd._udp.local");
}

TEST(Dns, RejectsPointerLoop) {
  // Craft a message whose name is a self-referencing compression pointer.
  ByteWriter w;
  w.u16(0).u16(0).u16(1).u16(0).u16(0).u16(0);  // header: one question
  w.u8(0xc0).u8(0x0c);  // pointer to itself (offset 12)
  w.u16(1).u16(1);
  EXPECT_EQ(decode_dns(BytesView(w.data())), std::nullopt);
}

TEST(Dns, RejectsTruncatedRecord) {
  DnsMessage m;
  m.is_response = true;
  m.answers.push_back(
      DnsRecord::make_a(DnsName::from_string("x.local"), Ipv4Address(1, 2, 3, 4)));
  Bytes raw = encode_dns(m);
  raw.resize(raw.size() - 2);
  EXPECT_EQ(decode_dns(BytesView(raw)), std::nullopt);
}

TEST(Dns, AaaaRoundTrip) {
  const auto ip = Ipv6Address::parse("fe80::a:b:c:d").value();
  const auto rec = DnsRecord::make_aaaa(DnsName::from_string("h.local"), ip);
  EXPECT_EQ(rec.aaaa(), ip);
  EXPECT_EQ(rec.a(), std::nullopt);
}

// -------------------------------------------------------------------- HTTP

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/event";
  req.headers.add("Host", "events.claspws.tv");
  req.headers.add("User-Agent", "AppDynamics/6.18.3");
  req.body = bytes_of("ssid=aG9tZQ==");
  const auto back = decode_http_request(BytesView(encode_http_request(req)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, "POST");
  EXPECT_EQ(back->target, "/v1/event");
  EXPECT_EQ(back->headers.get("host"), "events.claspws.tv");  // case-insensitive
  EXPECT_EQ(back->headers.get("Content-Length"), "13");       // auto-added
  EXPECT_EQ(string_of(BytesView(back->body)), "ssid=aG9tZQ==");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse res;
  res.status = 404;
  res.reason = "Not Found";
  res.headers.add("Server", "SheerDNS 1.0.0");
  const auto back = decode_http_response(BytesView(encode_http_response(res)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 404);
  EXPECT_EQ(back->reason, "Not Found");
  EXPECT_EQ(back->headers.get("Server"), "SheerDNS 1.0.0");
}

TEST(Http, RejectsMalformed) {
  EXPECT_EQ(decode_http_request(BytesView(bytes_of("not http"))), std::nullopt);
  EXPECT_EQ(decode_http_request(BytesView(bytes_of("GET /\r\n"))), std::nullopt);
  EXPECT_EQ(decode_http_response(BytesView(bytes_of("HTTP/1.1 abc OK\r\n\r\n"))),
            std::nullopt);
}

TEST(Http, LooksLikeHttpHeuristic) {
  EXPECT_TRUE(looks_like_http(BytesView(bytes_of("GET / HTTP/1.1\r\n"))));
  EXPECT_TRUE(looks_like_http(BytesView(bytes_of("HTTP/1.1 200 OK\r\n"))));
  EXPECT_TRUE(looks_like_http(BytesView(bytes_of("M-SEARCH * HTTP/1.1\r\n"))));
  EXPECT_FALSE(looks_like_http(BytesView(bytes_of("\x16\x03\x03"))));
  EXPECT_FALSE(looks_like_http(BytesView(bytes_of(""))));
}

// -------------------------------------------------------------------- SSDP

TEST(Ssdp, MSearchRoundTrip) {
  SsdpMessage m;
  m.kind = SsdpKind::kMSearch;
  m.search_target = "ssdp:all";
  m.mx = 3;
  const auto back = decode_ssdp(BytesView(encode_ssdp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, SsdpKind::kMSearch);
  EXPECT_EQ(back->search_target, "ssdp:all");
  EXPECT_EQ(back->mx, 3);
}

TEST(Ssdp, NotifyRoundTrip) {
  SsdpMessage m;
  m.kind = SsdpKind::kNotify;
  m.search_target = "upnp:rootdevice";
  m.usn = "uuid:device_3_0-AMC020SC43PJ749D66::upnp:rootdevice";
  m.server = "Linux, UPnP/1.0, Private UPnP SDK";
  m.location = "http://192.168.10.31:49152/description.xml";
  const auto back = decode_ssdp(BytesView(encode_ssdp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, SsdpKind::kNotify);
  EXPECT_EQ(back->usn, m.usn);
  EXPECT_EQ(back->server, m.server);
  EXPECT_EQ(back->location, m.location);
  EXPECT_EQ(back->nts, "ssdp:alive");
}

TEST(Ssdp, ResponseRoundTrip) {
  SsdpMessage m;
  m.kind = SsdpKind::kResponse;
  m.search_target = "urn:dial-multiscreen-org:service:dial:1";
  m.usn = "uuid:12345678-1234-1234-1234-123456789abc";
  const auto back = decode_ssdp(BytesView(encode_ssdp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, SsdpKind::kResponse);
  EXPECT_EQ(back->search_target, m.search_target);
}

TEST(Ssdp, RejectsPlainHttp) {
  HttpRequest req;  // GET, not an SSDP verb
  EXPECT_EQ(decode_ssdp(BytesView(encode_http_request(req))), std::nullopt);
}

TEST(UpnpDescription, XmlRoundTrip) {
  UpnpDeviceDescription d;
  d.device_type = "urn:schemas-upnp-org:device:Basic:1";
  d.friendly_name = "AMC020SC43PJ749D66";
  d.manufacturer = "Amcrest";
  d.model_name = "IP2M-841";
  d.serial_number = "9c:8e:cd:0a:33:1b";  // a MAC, as the paper observed
  d.udn = "uuid:device_3_0-AMC020SC43PJ749D66";
  d.service_types = {"urn:schemas-upnp-org:service:ConnectionManager:1",
                     "urn:schemas-upnp-org:service:AVTransport:1"};
  const auto back = UpnpDeviceDescription::from_xml(d.to_xml());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->friendly_name, d.friendly_name);
  EXPECT_EQ(back->serial_number, d.serial_number);
  EXPECT_EQ(back->udn, d.udn);
  EXPECT_EQ(back->service_types, d.service_types);
}

TEST(UpnpDescription, EscapesSpecialCharacters) {
  UpnpDeviceDescription d;
  d.friendly_name = "Jane & John's <TV>";
  const auto back = UpnpDeviceDescription::from_xml(d.to_xml());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->friendly_name, "Jane & John's <TV>");
}

// ------------------------------------------------------------------ TPLINK

TEST(Tplink, CipherIsInvolutionPair) {
  const Bytes plain = bytes_of(R"({"system":{"get_sysinfo":{}}})");
  const Bytes cipher = tplink_encrypt(BytesView(plain));
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(tplink_decrypt(BytesView(cipher)), plain);
}

TEST(Tplink, KnownCipherFirstByte) {
  // First plaintext byte '{' (0x7b) XOR 171 (0xab) = 0xd0.
  const Bytes cipher = tplink_encrypt(BytesView(bytes_of("{")));
  ASSERT_EQ(cipher.size(), 1u);
  EXPECT_EQ(cipher[0], 0xd0);
}

TEST(Tplink, UdpRoundTrip) {
  const auto cmd = tplink_get_sysinfo_request();
  const auto back = decode_tplink_udp(BytesView(encode_tplink_udp(cmd)));
  ASSERT_TRUE(back.has_value());
  EXPECT_NE(back->find_path("system.get_sysinfo"), nullptr);
}

TEST(Tplink, TcpFramingRoundTrip) {
  const auto cmd = tplink_get_sysinfo_request();
  const Bytes framed = encode_tplink_tcp(cmd);
  // 4-byte length prefix.
  const std::uint32_t len = (static_cast<std::uint32_t>(framed[0]) << 24) |
                            (static_cast<std::uint32_t>(framed[1]) << 16) |
                            (static_cast<std::uint32_t>(framed[2]) << 8) |
                            framed[3];
  EXPECT_EQ(len, framed.size() - 4);
  const auto back = decode_tplink_tcp(BytesView(framed));
  ASSERT_TRUE(back.has_value());
}

TEST(Tplink, SysinfoRoundTripIncludesGeolocation) {
  TplinkSysinfo info;
  info.alias = "TP-Link Plug";
  info.dev_name = "Wi-Fi Smart Plug With Energy Monitoring";
  info.model = "HS110(EU)";
  info.device_id = "8006E8E9017F556D283C850B4E29BC1F185334E5";
  info.hw_id = "60FF6B258734EA6880E186F8C96DDC61";
  info.oem_id = "FFF22CFF774A0B89F7624BFC6F50D5DE";
  info.mac = "02:a0:03:01:02:03";
  info.latitude = 42.337681;
  info.longitude = -71.087036;
  const auto back = TplinkSysinfo::from_json(info.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, info.device_id);
  EXPECT_EQ(back->oem_id, info.oem_id);
  EXPECT_NEAR(back->latitude, 42.337681, 1e-6);
  EXPECT_NEAR(back->longitude, -71.087036, 1e-6);
}

// -------------------------------------------------------------------- Tuya

TEST(Tuya, FrameRoundTripAndCrc) {
  TuyaFrame f;
  f.seq = 7;
  f.command = 0x13;
  f.payload = bytes_of(R"({"gwId":"0123"})");
  const Bytes raw = encode_tuya_frame(f);
  const auto back = decode_tuya_frame(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 7u);
  EXPECT_EQ(back->payload, f.payload);
}

TEST(Tuya, RejectsCorruptedCrc) {
  TuyaFrame f;
  f.payload = bytes_of("data");
  Bytes raw = encode_tuya_frame(f);
  raw[17] ^= 0x01;  // flip a payload bit; CRC no longer matches
  EXPECT_EQ(decode_tuya_frame(BytesView(raw)), std::nullopt);
}

TEST(Tuya, RejectsBadPrefix) {
  TuyaFrame f;
  Bytes raw = encode_tuya_frame(f);
  raw[3] = 0x00;
  EXPECT_EQ(decode_tuya_frame(BytesView(raw)), std::nullopt);
}

TEST(Tuya, DiscoveryExposesGwidAndProductKey) {
  TuyaDiscovery d;
  d.gw_id = "86200001ae90d6d48d2d";
  d.ip = "192.168.10.61";
  d.product_key = "keymwyws7ntafnwq";
  const auto back = decode_tuya_discovery(BytesView(encode_tuya_discovery(d)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->gw_id, d.gw_id);
  EXPECT_EQ(back->product_key, d.product_key);
  EXPECT_EQ(back->ip, d.ip);
}

// -------------------------------------------------------------------- CoAP

TEST(Coap, GetRequestRoundTrip) {
  CoapMessage m;
  m.type = CoapType::kConfirmable;
  m.code = kCoapGet;
  m.message_id = 0x1234;
  m.token = {0xde, 0xad};
  m.set_uri_path("oic/res");
  const auto back = decode_coap(BytesView(encode_coap(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, CoapType::kConfirmable);
  EXPECT_EQ(back->code, kCoapGet);
  EXPECT_EQ(back->message_id, 0x1234);
  EXPECT_EQ(back->token, m.token);
  EXPECT_EQ(back->uri_path(), "oic/res");
}

TEST(Coap, PayloadAfterMarker) {
  CoapMessage m;
  m.code = kCoapContent;
  m.payload = bytes_of("{\"rt\":\"oic.wk.res\"}");
  const auto back = decode_coap(BytesView(encode_coap(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Coap, LargeOptionDeltaUsesExtendedEncoding) {
  CoapMessage m;
  m.options.push_back({2048, bytes_of("v")});  // delta >= 269
  const auto back = decode_coap(BytesView(encode_coap(m)));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->options.size(), 1u);
  EXPECT_EQ(back->options[0].number, 2048);
}

TEST(Coap, RejectsBadVersionAndEmptyPayloadMarker) {
  CoapMessage m;
  Bytes raw = encode_coap(m);
  Bytes bad_version = raw;
  bad_version[0] = static_cast<std::uint8_t>(bad_version[0] & 0x3f);  // version 0
  EXPECT_EQ(decode_coap(BytesView(bad_version)), std::nullopt);
  Bytes marker_no_payload = raw;
  marker_no_payload.push_back(0xff);
  EXPECT_EQ(decode_coap(BytesView(marker_no_payload)), std::nullopt);
}

// ----------------------------------------------------------------- NetBIOS

TEST(Netbios, WildcardEncodesToCkaaa) {
  EXPECT_EQ(netbios_encode_name("*"),
            "CKAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");  // Table 5's exact string
}

TEST(Netbios, NameEncodingRoundTrip) {
  const std::string encoded = netbios_encode_name("WORKGROUP");
  EXPECT_EQ(encoded.size(), 32u);
  EXPECT_EQ(netbios_decode_name(encoded), "WORKGROUP");
  EXPECT_EQ(netbios_decode_name("short"), std::nullopt);
  EXPECT_EQ(netbios_decode_name(std::string(32, 'z')), std::nullopt);
}

TEST(Netbios, NodeStatusQueryRoundTrip) {
  NetbiosPacket p;
  p.transaction_id = 0x0001;
  p.op = NetbiosOp::kNodeStatusQuery;
  p.name = "*";
  const Bytes raw = encode_netbios(p);
  EXPECT_TRUE(is_netbios_wildcard_scan(BytesView(raw)));
  const auto back = decode_netbios(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, NetbiosOp::kNodeStatusQuery);
  EXPECT_EQ(back->name, "*");
}

TEST(Netbios, NodeStatusResponseListsNames) {
  NetbiosPacket p;
  p.op = NetbiosOp::kNodeStatusResponse;
  p.name = "*";
  p.owned_names = {"SMARTTV", "WORKGROUP"};
  const auto back = decode_netbios(BytesView(encode_netbios(p)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, NetbiosOp::kNodeStatusResponse);
  EXPECT_EQ(back->owned_names, p.owned_names);
}

TEST(Netbios, NonWildcardIsNotScan) {
  NetbiosPacket p;
  p.op = NetbiosOp::kNodeStatusQuery;
  p.name = "PRINTER";
  EXPECT_FALSE(is_netbios_wildcard_scan(BytesView(encode_netbios(p))));
}

// --------------------------------------------------------------------- TLS

TEST(Tls, ClientHelloRoundTrip) {
  Rng rng(11);
  TlsClientHello hello;
  hello.version = TlsVersion::kTls12;
  hello.random = rng.bytes(32);
  hello.cipher_suites = {0xc02f, 0xc030, 0x009e};
  hello.sni = "local-device";
  const Bytes raw = encode_client_hello(hello);
  EXPECT_TRUE(looks_like_tls(BytesView(raw)));
  const auto rec = decode_tls_record(BytesView(raw));
  ASSERT_TRUE(rec.has_value());
  const auto back = decode_client_hello(*rec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, TlsVersion::kTls12);
  EXPECT_EQ(back->cipher_suites, hello.cipher_suites);
  EXPECT_EQ(back->sni, "local-device");
}

TEST(Tls, Tls13NegotiatedViaExtension) {
  Rng rng(12);
  TlsClientHello hello;
  hello.version = TlsVersion::kTls13;
  hello.random = rng.bytes(32);
  hello.cipher_suites = {0x1301};
  const Bytes raw = encode_client_hello(hello);
  // Wire record version stays 0x0303 (middlebox compat).
  EXPECT_EQ(raw[1], 0x03);
  EXPECT_EQ(raw[2], 0x03);
  const auto back = decode_client_hello(*decode_tls_record(BytesView(raw)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, TlsVersion::kTls13);
}

TEST(Tls, ServerHelloRoundTrip) {
  Rng rng(13);
  TlsServerHello hello;
  hello.version = TlsVersion::kTls13;
  hello.random = rng.bytes(32);
  hello.cipher_suite = 0x1302;
  const auto rec = decode_tls_record(BytesView(encode_server_hello(hello)));
  ASSERT_TRUE(rec.has_value());
  const auto back = decode_server_hello(*rec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, TlsVersion::kTls13);
  EXPECT_EQ(back->cipher_suite, 0x1302);
}

TEST(Tls, CertificateMetadataRoundTrip) {
  CertificateInfo cert;
  cert.subject_cn = "192.168.0.57";
  cert.issuer_cn = "192.168.0.57";
  cert.validity_days = 90;  // Echo-style 3-month cert
  cert.key_bits = 2048;
  const auto rec =
      decode_tls_record(BytesView(encode_certificate(cert, TlsVersion::kTls12, false)));
  ASSERT_TRUE(rec.has_value());
  const auto back = decode_certificate(*rec);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->self_signed());
  EXPECT_EQ(back->validity_days, 90u);
  EXPECT_NEAR(back->validity_years(), 0.25, 0.01);
}

TEST(Tls, EncryptedCertificateIsOpaque) {
  CertificateInfo cert;
  cert.subject_cn = "apple-device";
  cert.issuer_cn = "Apple Local CA";
  const Bytes raw = encode_certificate(cert, TlsVersion::kTls13, true);
  const auto rec = decode_tls_record(BytesView(raw));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, TlsRecordType::kApplicationData);
  EXPECT_EQ(decode_certificate(*rec), std::nullopt);
  // And the cleartext CN must not appear in the bytes.
  const std::string hex = to_hex(BytesView(raw));
  EXPECT_EQ(string_of(BytesView(raw)).find("Apple"), std::string::npos);
}

TEST(Tls, RecordStreamSplitting) {
  Rng rng(14);
  Bytes stream;
  const Bytes a = encode_application_data(rng, 100);
  const Bytes b = encode_application_data(rng, 200);
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  const auto records = decode_tls_records(BytesView(stream));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].body.size(), 100u);
  EXPECT_EQ(records[1].body.size(), 200u);
}

TEST(Tls, LooksLikeTlsRejectsOtherTraffic) {
  EXPECT_FALSE(looks_like_tls(BytesView(bytes_of("GET / HTTP/1.1"))));
  EXPECT_FALSE(looks_like_tls(BytesView(bytes_of(""))));
  const Bytes bogus = {0x16, 0x05, 0x03, 0x00, 0x10};
  EXPECT_FALSE(looks_like_tls(BytesView(bogus)));
}

// --------------------------------------------------------------- RTP/STUN

TEST(Rtp, RoundTrip) {
  RtpPacket p;
  p.payload_type = 96;
  p.sequence = 4242;
  p.timestamp = 90000;
  p.ssrc = 0xcafebabe;
  p.payload = bytes_of("audio");
  const auto back = decode_rtp(BytesView(encode_rtp(p)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sequence, 4242);
  EXPECT_EQ(back->ssrc, 0xcafebabeu);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Stun, RoundTrip) {
  Rng rng(15);
  StunMessage m;
  m.type = 0x0001;
  m.transaction_id = rng.bytes(12);
  const auto back = decode_stun(BytesView(encode_stun(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, 0x0001);
  EXPECT_EQ(back->transaction_id, m.transaction_id);
}

TEST(RtpStun, HeuristicsDisambiguateByLeadingBits) {
  RtpPacket rtp;
  rtp.payload = bytes_of("x");
  const Bytes rtp_raw = encode_rtp(rtp);
  EXPECT_TRUE(looks_like_rtp(BytesView(rtp_raw)));
  EXPECT_FALSE(looks_like_stun(BytesView(rtp_raw)));

  StunMessage stun;
  const Bytes stun_raw = encode_stun(stun);
  EXPECT_TRUE(looks_like_stun(BytesView(stun_raw)));
  EXPECT_FALSE(looks_like_rtp(BytesView(stun_raw)));
}

// ------------------------------------------------------------------ Matter

TEST(Matter, MessageRoundTrip) {
  MatterMessage m;
  m.session_id = 0x1234;
  m.message_counter = 42;
  m.source_node = 0x1122334455667788ull;
  m.payload = bytes_of("protected-bytes");
  const Bytes raw = encode_matter(m);
  EXPECT_TRUE(looks_like_matter(BytesView(raw)));
  const auto back = decode_matter(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session_id, 0x1234);
  EXPECT_EQ(back->message_counter, 42u);
  EXPECT_EQ(back->source_node, 0x1122334455667788ull);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Matter, MessageWithoutNodesRoundTrip) {
  MatterMessage m;
  m.session_id = 0;  // unsecured commissioning session
  m.payload = bytes_of("pase");
  const auto back = decode_matter(BytesView(encode_matter(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->source_node, std::nullopt);
  EXPECT_EQ(back->destination_node, std::nullopt);
}

TEST(Matter, CommissionableAdvertisementRoundTrip) {
  MatterCommissionable node;
  node.discriminator = 0xabc;
  node.vendor_id = 0xfff1;
  node.product_id = 0x8001;
  node.commissioning_open = true;
  node.instance = "02A000112233";  // MAC-derived: the §7 exposure
  const DnsMessage advert = matter_commissionable_advertisement(
      node, "echo.local", Ipv4Address(192, 168, 10, 5));
  // Survives the mDNS wire format.
  const auto wire = decode_dns(BytesView(encode_dns(advert)));
  ASSERT_TRUE(wire.has_value());
  const auto back = parse_matter_advertisement(*wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->discriminator, 0xabc);
  EXPECT_EQ(back->vendor_id, 0xfff1);
  EXPECT_TRUE(back->commissioning_open);
  EXPECT_EQ(back->instance, "02A000112233");
}

TEST(Matter, NonMatterMdnsYieldsNullopt) {
  DnsMessage msg;
  msg.is_response = true;
  msg.answers.push_back(DnsRecord::make_txt(
      DnsName::from_string("x._hue._tcp.local"), {"a=b"}));
  EXPECT_EQ(parse_matter_advertisement(msg), std::nullopt);
}

// ------------------------------------------------------------------ DHCPv6

TEST(Dhcpv6, SolicitRoundTripWithDuidLl) {
  const auto mac = MacAddress::parse("02:a0:00:12:34:56").value();
  Dhcpv6Message m;
  m.type = Dhcpv6Type::kSolicit;
  m.transaction_id = 0xabcdef;
  m.set_client_duid_ll(mac);
  m.set_fqdn("Echo-Show-5");
  const auto back = decode_dhcpv6(BytesView(encode_dhcpv6(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, Dhcpv6Type::kSolicit);
  EXPECT_EQ(back->transaction_id, 0xabcdefu);
  EXPECT_EQ(back->client_mac(), mac);  // the MAC rides the multicast
  EXPECT_EQ(back->fqdn(), "Echo-Show-5");
}

TEST(Dhcpv6, MulticastGroupIsAllDhcpAgents) {
  EXPECT_EQ(dhcpv6_multicast_group().to_string(), "ff02::1:2");
}

TEST(Dhcpv6, RejectsTruncatedOptions) {
  Dhcpv6Message m;
  m.set_client_duid_ll(MacAddress::from_u64(1));
  Bytes raw = encode_dhcpv6(m);
  raw.resize(raw.size() - 3);
  EXPECT_EQ(decode_dhcpv6(BytesView(raw)), std::nullopt);
}

}  // namespace
}  // namespace roomnet
