// Streaming-pipeline tests: FlowCache eviction mechanics (memcap / LRU /
// timeouts, prune-reason accounting), streaming-vs-batch byte-identical
// parity at several thread counts on clean and faulty runs, and the
// bounded-memory regression guard (streaming peak state stays flat while
// batch capture memory grows with simulation length).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "capture/flow.hpp"
#include "capture/flow_cache.hpp"
#include "core/pipeline.hpp"
#include "core/provenance.hpp"
#include "netcore/packet_view.hpp"
#include "obs/manifest.hpp"
#include "stream/stream.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) {
  return MacAddress::from_u64(0x02a000000000ull | n);
}

Packet udp_packet(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                  std::uint16_t dport, std::string_view payload,
                  MacAddress src_mac = mac_n(1),
                  MacAddress dst_mac = mac_n(2)) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.payload = Bytes(64);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = 17;
  p.ipv4 = ip;
  UdpDatagram u;
  u.src_port = port(sport);
  u.dst_port = port(dport);
  u.payload = bytes_of(payload);
  p.udp = u;
  return p;
}

Packet tcp_packet(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                  std::uint16_t dport, std::string_view payload,
                  TcpFlags flags = {}) {
  Packet p;
  p.eth.src = mac_n(1);
  p.eth.dst = mac_n(2);
  p.eth.payload = Bytes(64);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = 6;
  p.ipv4 = ip;
  TcpSegment t;
  t.src_port = port(sport);
  t.dst_port = port(dport);
  t.flags = flags;
  t.payload = bytes_of(payload);
  p.tcp = t;
  return p;
}

/// Collects every emitted record (deep copy — the reference dies with the
/// sink call).
struct RecordLog {
  std::vector<FlowRecord> records;
  std::vector<PruneReason> reasons;
  FlowCache::Sink sink() {
    return [this](const FlowRecord& rec, PruneReason reason) {
      records.push_back(rec);
      reasons.push_back(reason);
    };
  }
};

// ------------------------------------------------------------ StreamFlowCache

TEST(StreamFlowCache, CondensesBidirectionalFlowAndFlushes) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCache cache({}, log.sink());

  const Packet req = udp_packet(a, 5000, b, 80, "req");
  const Packet res = udp_packet(b, 80, a, 5000, "resp");
  const Packet req2 = udp_packet(a, 5000, b, 80, "req2");
  cache.add(SimTime::from_ms(0), as_view(req));
  cache.add(SimTime::from_ms(10), as_view(res));
  cache.add(SimTime::from_ms(20), as_view(req2));
  EXPECT_EQ(cache.stats().flows_created, 1u);
  EXPECT_EQ(cache.stats().active_flows, 1u);
  EXPECT_EQ(cache.stats().packets, 3u);
  EXPECT_TRUE(log.records.empty());  // nothing evicts without a knob armed

  cache.flush();
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.reasons[0], PruneReason::kFlush);
  const FlowRecord& rec = log.records[0];
  EXPECT_EQ(rec.key.client_ip, a);
  EXPECT_EQ(rec.key.server_port, port(80));
  EXPECT_EQ(rec.packets, 3u);
  EXPECT_EQ(rec.client_packets, 2u);
  EXPECT_EQ(rec.server_packets, 1u);
  EXPECT_EQ(rec.bytes, 3 * (64u + 14u));  // matches Flow::byte_count
  EXPECT_EQ(rec.first_seen, SimTime::from_ms(0));
  EXPECT_EQ(rec.last_seen, SimTime::from_ms(20));
  // First non-empty payload per direction, copied out of the packet.
  EXPECT_EQ(string_of(BytesView{rec.client_payload}), "req");
  EXPECT_EQ(string_of(BytesView{rec.server_payload}), "resp");
  EXPECT_EQ(cache.stats().active_flows, 0u);

  cache.flush();  // idempotent
  EXPECT_EQ(log.records.size(), 1u);
}

TEST(StreamFlowCache, ResetZeroesStatsAndReproducesAFreshCache) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCache cache({}, log.sink());

  const auto feed = [&cache, &a, &b] {
    for (int i = 0; i < 20; ++i) {
      const Packet p = udp_packet(a, static_cast<std::uint16_t>(5000 + i), b,
                                  80, "req");
      cache.add(SimTime::from_ms(i), as_view(p));
    }
    cache.flush();
  };
  feed();
  const std::size_t first_records = log.records.size();
  ASSERT_EQ(first_records, 20u);

  cache.reset();
  EXPECT_EQ(cache.stats().flows_created, 0u);
  EXPECT_EQ(cache.stats().packets, 0u);
  EXPECT_EQ(cache.stats().active_flows, 0u);
  EXPECT_EQ(cache.stats().peak_bytes, 0u);

  // A recycled cache behaves exactly like a fresh one: same records, same
  // creation-order emission, same stats (node reuse order is unobservable).
  feed();
  ASSERT_EQ(log.records.size(), 2 * first_records);
  EXPECT_EQ(cache.stats().flows_created, 20u);
  for (std::size_t i = 0; i < first_records; ++i) {
    EXPECT_EQ(log.records[first_records + i].key,
              log.records[i].key) << "record " << i;
    EXPECT_EQ(log.records[first_records + i].packets, log.records[i].packets);
  }
}

TEST(StreamFlowCache, ToFlowMatchesBatchFlowOnClassifierInputs) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  const Packet req = udp_packet(a, 5000, b, 80, "question");
  const Packet res = udp_packet(b, 80, a, 5000, "answer");

  FlowTable table;
  table.add(SimTime::from_ms(0), req);
  table.add(SimTime::from_ms(5), res);
  const Flow& batch = table.flows()[0];

  RecordLog log;
  FlowCache cache({}, log.sink());
  cache.add(SimTime::from_ms(0), as_view(req));
  cache.add(SimTime::from_ms(5), as_view(res));
  cache.flush();
  ASSERT_EQ(log.records.size(), 1u);
  const Flow synth = log.records[0].to_flow();

  // Everything classify_flow reads must agree with the materialized flow.
  EXPECT_EQ(synth.key, batch.key);
  EXPECT_FALSE(synth.packets.empty());
  EXPECT_EQ(string_of(synth.first_client_payload()),
            string_of(batch.first_client_payload()));
  EXPECT_EQ(string_of(synth.first_server_payload()),
            string_of(batch.first_server_payload()));
}

TEST(StreamFlowCache, TracksTcpFlagsAndPerProtoCounters) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCache cache({}, log.sink());

  TcpFlags syn;
  syn.syn = true;
  TcpFlags finack;
  finack.fin = true;
  finack.ack = true;
  const Packet open = tcp_packet(a, 40000, b, 443, "", syn);
  const Packet close = tcp_packet(a, 40000, b, 443, "", finack);
  const Packet dgram = udp_packet(a, 5000, b, 53, "q");
  cache.add(SimTime::from_ms(0), as_view(open));
  cache.add(SimTime::from_ms(1), as_view(close));
  cache.add(SimTime::from_ms(2), as_view(dgram));
  EXPECT_EQ(cache.stats().tcp_flows, 1u);
  EXPECT_EQ(cache.stats().udp_flows, 1u);

  cache.flush();
  ASSERT_EQ(log.records.size(), 2u);
  const FlowRecord& tcp_rec = log.records[0];  // creation order
  EXPECT_TRUE(tcp_rec.tcp_flags_seen.syn);
  EXPECT_TRUE(tcp_rec.tcp_flags_seen.fin);
  EXPECT_TRUE(tcp_rec.tcp_flags_seen.ack);
  EXPECT_FALSE(tcp_rec.tcp_flags_seen.rst);
}

TEST(StreamFlowCache, MaxFlowsEvictsLeastRecentlyUsed) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCacheConfig config;
  config.max_flows = 2;
  FlowCache cache(config, log.sink());

  const Packet f1 = udp_packet(a, 5001, b, 80, "one");
  const Packet f2 = udp_packet(a, 5002, b, 80, "two");
  const Packet f1b = udp_packet(a, 5001, b, 80, "one-again");
  const Packet f3 = udp_packet(a, 5003, b, 80, "three");
  cache.add(SimTime::from_ms(0), as_view(f1));
  cache.add(SimTime::from_ms(1), as_view(f2));
  cache.add(SimTime::from_ms(2), as_view(f1b));  // touch: f2 is now LRU
  cache.add(SimTime::from_ms(3), as_view(f3));   // over max_flows: evict f2
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.reasons[0], PruneReason::kExcess);
  EXPECT_EQ(log.records[0].key.client_port, port(5002));
  EXPECT_EQ(cache.stats().active_flows, 2u);
  EXPECT_EQ(cache.stats().prunes[static_cast<std::size_t>(
                PruneReason::kExcess)],
            1u);
}

TEST(StreamFlowCache, MemcapEvictsUntilUnderBudget) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCacheConfig config;
  // Room for roughly two flows carrying 200-byte payloads (256 base + 200).
  config.memcap_bytes = 1000;
  FlowCache cache(config, log.sink());

  const std::string big(200, 'x');
  for (std::uint16_t i = 0; i < 6; ++i) {
    const Packet p =
        udp_packet(a, static_cast<std::uint16_t>(6000 + i), b, 80, big);
    cache.add(SimTime::from_ms(i), as_view(p));
    EXPECT_LE(cache.stats().bytes_used, config.memcap_bytes);
  }
  EXPECT_EQ(cache.stats().flows_created, 6u);
  EXPECT_EQ(log.records.size(), 4u);
  for (const PruneReason reason : log.reasons)
    EXPECT_EQ(reason, PruneReason::kMemcap);
  // Oldest-first: the LRU tail goes first, in arrival order.
  EXPECT_EQ(log.records[0].key.client_port, port(6000));
  EXPECT_EQ(log.records[1].key.client_port, port(6001));
  // Peak never exceeded the budget by more than the in-flight flow's cost.
  EXPECT_LE(cache.stats().peak_bytes, config.memcap_bytes + 256 + big.size());
}

TEST(StreamFlowCache, IdleTimeoutEvictsInEventOrder) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCacheConfig config;
  config.idle_timeout = SimTime::from_seconds(5);
  FlowCache cache(config, log.sink());

  const Packet f1 = udp_packet(a, 5001, b, 80, "one");
  const Packet f2 = udp_packet(a, 5002, b, 80, "two");
  cache.add(SimTime::from_seconds(0), as_view(f1));
  cache.add(SimTime::from_seconds(2), as_view(f2));
  EXPECT_TRUE(log.records.empty());

  // t=8: f1 idle 8s (out), f2 idle 6s (out); both expire before the new
  // packet folds, oldest last_seen first.
  const Packet f3 = udp_packet(a, 5003, b, 80, "three");
  cache.add(SimTime::from_seconds(8), as_view(f3));
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.reasons[0], PruneReason::kIdle);
  EXPECT_EQ(log.reasons[1], PruneReason::kIdle);
  EXPECT_EQ(log.records[0].key.client_port, port(5001));
  EXPECT_EQ(log.records[1].key.client_port, port(5002));
  EXPECT_EQ(cache.stats().active_flows, 1u);
}

TEST(StreamFlowCache, EstablishedTimeoutSplitsLongLivedFlow) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCacheConfig config;
  config.established_timeout = SimTime::from_seconds(10);
  FlowCache cache(config, log.sink());

  const Packet chat = udp_packet(a, 5000, b, 80, "tick");
  cache.add(SimTime::from_seconds(0), as_view(chat));
  cache.add(SimTime::from_seconds(5), as_view(chat));
  EXPECT_TRUE(log.records.empty());
  // t=12: lifetime cap hit — the old record is emitted and a fresh one
  // starts with this packet.
  cache.add(SimTime::from_seconds(12), as_view(chat));
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.reasons[0], PruneReason::kEstablished);
  EXPECT_EQ(log.records[0].packets, 2u);
  EXPECT_EQ(cache.stats().flows_created, 2u);
  EXPECT_EQ(cache.stats().active_flows, 1u);
}

TEST(StreamFlowCache, FlushEmitsSurvivorsInCreationOrder) {
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  RecordLog log;
  FlowCache cache({}, log.sink());
  for (std::uint16_t i = 0; i < 5; ++i) {
    const Packet p =
        udp_packet(a, static_cast<std::uint16_t>(7000 + i), b, 80, "p");
    cache.add(SimTime::from_ms(i), as_view(p));
  }
  // Touch them in reverse so LRU order is the opposite of creation order.
  for (std::uint16_t i = 5; i-- > 0;) {
    const Packet p =
        udp_packet(a, static_cast<std::uint16_t>(7000 + i), b, 80, "p");
    cache.add(SimTime::from_ms(100 + (5 - i)), as_view(p));
  }
  cache.flush();
  ASSERT_EQ(log.records.size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i)
    EXPECT_EQ(log.records[i].key.client_port,
              port(static_cast<std::uint16_t>(7000 + i)))
        << i;
}

TEST(StreamFlowCache, PruneCountersReachTelemetry) {
  auto& registry = telemetry::Registry::global();
  telemetry::Counter& memcap_counter = registry.counter(
      "roomnet_flow_cache_prunes_total", {{"reason", "memcap"}});
  const std::uint64_t before = memcap_counter.value();

  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  FlowCacheConfig config;
  config.memcap_bytes = 600;  // fits one 200-byte-payload flow, not two
  FlowCache cache(config, {});
  const std::string big(200, 'x');
  for (std::uint16_t i = 0; i < 3; ++i) {
    const Packet p =
        udp_packet(a, static_cast<std::uint16_t>(6100 + i), b, 80, big);
    cache.add(SimTime::from_ms(i), as_view(p));
  }
  EXPECT_GT(memcap_counter.value(), before);
  EXPECT_GT(registry.gauge("roomnet_flow_cache_peak_flows").value(), 0);
}

TEST(StreamFlowCache, EveryPruneReasonSurvivesIntoExportedReport) {
  // The flow-cache accounting is part of the exported observability surface:
  // after driving all five prune reasons, each reason-labeled counter must
  // show up — non-zero — in both the Prometheus text and the JSON mirror.
  auto& registry = telemetry::Registry::global();
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  const auto flow_starter = [&](FlowCache& cache, std::uint16_t sport,
                                SimTime at) {
    const Packet p = udp_packet(a, sport, b, 80, "x");
    cache.add(at, as_view(p));
  };
  {
    FlowCacheConfig config;
    config.idle_timeout = SimTime::from_seconds(1);
    FlowCache cache(config, {});
    flow_starter(cache, 7000, SimTime::from_ms(0));
    flow_starter(cache, 7001, SimTime::from_seconds(10));  // 7000 idles out
  }
  {
    FlowCacheConfig config;
    config.established_timeout = SimTime::from_seconds(1);
    FlowCache cache(config, {});
    flow_starter(cache, 7000, SimTime::from_ms(0));
    flow_starter(cache, 7000, SimTime::from_seconds(5));  // lifetime cap
  }
  {
    FlowCacheConfig config;
    config.memcap_bytes = 600;
    FlowCache cache(config, {});
    const std::string big(200, 'x');
    for (std::uint16_t i = 0; i < 3; ++i) {
      const Packet p =
          udp_packet(a, static_cast<std::uint16_t>(7100 + i), b, 80, big);
      cache.add(SimTime::from_ms(i), as_view(p));
    }
  }
  {
    FlowCacheConfig config;
    config.max_flows = 1;
    FlowCache cache(config, {});
    flow_starter(cache, 7000, SimTime::from_ms(0));
    flow_starter(cache, 7001, SimTime::from_ms(1));  // LRU victim for slot
  }
  {
    FlowCache cache({}, {});
    flow_starter(cache, 7000, SimTime::from_ms(0));
    cache.flush();
  }

  const std::string prom = telemetry::to_prometheus(registry);
  const std::string json = telemetry::to_json(registry);
  for (const char* reason :
       {"idle", "established", "memcap", "excess", "flush"}) {
    EXPECT_GT(registry
                  .counter("roomnet_flow_cache_prunes_total",
                           {{"reason", reason}})
                  .value(),
              0u)
        << reason;
    const std::string prom_line = "roomnet_flow_cache_prunes_total{reason=\"" +
                                  std::string(reason) + "\"}";
    EXPECT_NE(prom.find(prom_line), std::string::npos) << reason;
    // The sample value on that line must be non-zero (" 0\n" would mean the
    // counter made it to the report in name only).
    const std::size_t pos = prom.find(prom_line);
    EXPECT_NE(prom.compare(pos + prom_line.size(), 3, " 0\n"), 0)
        << "zero-valued " << reason << " counter in metrics.prom";
    const std::string json_needle =
        "\"labels\":{\"reason\":\"" + std::string(reason) + "\"}";
    EXPECT_NE(json.find(json_needle), std::string::npos) << reason;
  }
  // Gauges ride along: occupancy/peak accounting is in the same report.
  EXPECT_NE(prom.find("roomnet_flow_cache_peak_flows"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE roomnet_flow_cache_prunes_total counter"),
            std::string::npos);
}

// --------------------------------------------------------------- StreamParity

/// Field-level spot checks plus the machine-checkable form: byte-identical
/// manifest JSON (same config digest, same stage hashes).
void expect_equal_results(const PipelineResults& batch,
                          const PipelineResults& streaming) {
  EXPECT_EQ(streaming.local_packets, batch.local_packets);
  EXPECT_EQ(streaming.flows, batch.flows);
  EXPECT_EQ(streaming.usage.by_device, batch.usage.by_device);
  ASSERT_EQ(streaming.graph.edges.size(), batch.graph.edges.size());
  for (std::size_t i = 0; i < streaming.graph.edges.size(); ++i) {
    EXPECT_EQ(streaming.graph.edges[i].a, batch.graph.edges[i].a) << i;
    EXPECT_EQ(streaming.graph.edges[i].b, batch.graph.edges[i].b) << i;
    EXPECT_EQ(streaming.graph.edges[i].packets, batch.graph.edges[i].packets)
        << i;
  }
  EXPECT_EQ(streaming.crossval.matrix, batch.crossval.matrix);
  EXPECT_EQ(streaming.crossval.total, batch.crossval.total);
  EXPECT_EQ(streaming.crossval.agreed, batch.crossval.agreed);
  EXPECT_EQ(streaming.crossval.disagreed, batch.crossval.disagreed);
  EXPECT_EQ(streaming.exposure.cells, batch.exposure.cells);
  EXPECT_EQ(streaming.responses.discovery_protocols,
            batch.responses.discovery_protocols);
  EXPECT_EQ(streaming.responses.answered_protocols,
            batch.responses.answered_protocols);
  ASSERT_EQ(streaming.responses.matches.size(), batch.responses.matches.size());
  for (std::size_t i = 0; i < streaming.responses.matches.size(); ++i) {
    EXPECT_EQ(streaming.responses.matches[i].responder,
              batch.responses.matches[i].responder)
        << i;
    EXPECT_EQ(streaming.responses.matches[i].response_at,
              batch.responses.matches[i].response_at)
        << i;
  }
  EXPECT_EQ(obs::to_json(streaming.manifest), obs::to_json(batch.manifest));
  const obs::ManifestDiff diff =
      obs::diff_manifests(batch.manifest, streaming.manifest);
  EXPECT_TRUE(diff.equal) << diff.detail;
}

TEST(StreamParity, ByteIdenticalToBatchAcrossThreadCounts) {
  // The headline claim: a default (non-evicting) streaming run reproduces
  // the batch run bit-for-bit — same analysis tables, same manifest stage
  // hashes, same config digest — at every worker count.
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  config.run_scan = true;
  config.run_crowd = true;

  Pipeline batch_pipeline(config);
  const PipelineResults batch = batch_pipeline.run();
  EXPECT_GT(batch.flows, 0u);

  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PipelineConfig c = config;
    c.mode = PipelineMode::kStreaming;
    c.threads = threads;
    Pipeline streaming_pipeline(c);
    const PipelineResults streaming = streaming_pipeline.run();
    expect_equal_results(batch, streaming);
    // The cache saw every flow and completed all of them at flush.
    EXPECT_EQ(streaming.flow_cache.flows_created, batch.flows);
    EXPECT_EQ(streaming.flow_cache.prunes[static_cast<std::size_t>(
                  PruneReason::kFlush)],
              batch.flows);
    EXPECT_EQ(streaming.flow_cache.active_flows, 0u);
  }
}

TEST(StreamParity, ByteIdenticalToBatchWithFaults) {
  // Same claim under an adversarial frame stream: loss/dup/truncation/
  // corruption perturb the wire identically in both modes (same fault seed),
  // and streaming still reproduces batch bit-for-bit.
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 10;
  config.app_sample = 0;
  config.run_scan = false;
  config.run_crowd = false;
  config.faults.loss = 0.03;
  config.faults.duplicate = 0.02;
  config.faults.truncate = 0.02;
  config.faults.corrupt = 0.01;

  Pipeline batch_pipeline(config);
  const PipelineResults batch = batch_pipeline.run();
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PipelineConfig c = config;
    c.mode = PipelineMode::kStreaming;
    c.threads = threads;
    Pipeline streaming_pipeline(c);
    const PipelineResults streaming = streaming_pipeline.run();
    expect_equal_results(batch, streaming);
  }
}

TEST(StreamParity, EvictingConfigChangesDigestHonestly) {
  // A memcap'd run may legitimately differ from batch (flows split, payload
  // state dropped), so its config digest must say so — while the default
  // streaming digest matches batch exactly.
  PipelineConfig batch;
  PipelineConfig plain_streaming = batch;
  plain_streaming.mode = PipelineMode::kStreaming;
  PipelineConfig memcapped = plain_streaming;
  memcapped.stream.memcap_bytes = 1 << 20;

  EXPECT_EQ(pipeline_config_digest(batch),
            pipeline_config_digest(plain_streaming));
  EXPECT_NE(pipeline_config_digest(batch), pipeline_config_digest(memcapped));
  EXPECT_FALSE(plain_streaming.stream.evicting());
  EXPECT_TRUE(memcapped.stream.evicting());
}

// --------------------------------------------------------------- StreamMemory

TEST(StreamMemory, CacheStateBoundedByMemcapAsFlowCountGrows) {
  // O(active flows), not O(all flows): drive 500 distinct flows through a
  // 16 KiB cache and watch usage stay under the cap throughout.
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  FlowCacheConfig config;
  config.memcap_bytes = 16 * 1024;
  FlowCache cache(config, {});
  const std::string payload(300, 'y');
  for (std::uint32_t i = 0; i < 500; ++i) {
    const Packet p = udp_packet(
        Ipv4Address(192, 168, static_cast<std::uint8_t>(10 + i / 250),
                    static_cast<std::uint8_t>(i % 250)),
        static_cast<std::uint16_t>(1024 + i), b, 80, payload);
    cache.add(SimTime::from_ms(i), as_view(p));
    EXPECT_LE(cache.stats().bytes_used, config.memcap_bytes);
  }
  EXPECT_EQ(cache.stats().flows_created, 500u);
  EXPECT_LE(cache.stats().peak_bytes,
            config.memcap_bytes + 256 + payload.size());
  EXPECT_GT(cache.stats().prunes[static_cast<std::size_t>(
                PruneReason::kMemcap)],
            0u);
  (void)a;
}

TEST(StreamMemory, StreamingPeakStaysFlatWhileBatchCaptureGrows) {
  // The regression the whole refactor exists to prevent: batch capture
  // memory is O(simulated time); a memcap'd streaming run's peak state is
  // not. Run the same scenario at 1x and 3x length in both modes.
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 0;
  config.app_sample = 0;
  config.run_scan = false;
  config.run_crowd = false;

  auto& registry = telemetry::Registry::global();
  telemetry::Gauge& arena_bytes =
      registry.gauge("roomnet_capture_arena_bytes_used");

  const auto run = [&](PipelineMode mode, double scale) {
    PipelineConfig c = config;
    c.mode = mode;
    c.idle_duration = SimTime::from_minutes(10 * scale);
    if (mode == PipelineMode::kStreaming)
      c.stream.memcap_bytes = 256 * 1024;
    Pipeline pipeline(c);
    return pipeline.run();
  };

  const PipelineResults batch_short = run(PipelineMode::kBatch, 1);
  const std::int64_t batch_short_arena = arena_bytes.value();
  const PipelineResults batch_long = run(PipelineMode::kBatch, 3);
  const std::int64_t batch_long_arena = arena_bytes.value();
  EXPECT_GT(batch_short_arena, 0);
  // Batch memory tracks simulated time (~3x the idle traffic).
  EXPECT_GT(batch_long_arena, 2 * batch_short_arena);
  EXPECT_GT(batch_long.local_packets, 2 * batch_short.local_packets);

  const PipelineResults stream_short = run(PipelineMode::kStreaming, 1);
  const PipelineResults stream_long = run(PipelineMode::kStreaming, 3);
  EXPECT_GT(stream_long.flow_cache.flows_created,
            stream_short.flow_cache.flows_created);
  // ...but peak cache state is bounded by the memcap, not the run length.
  EXPECT_GT(stream_short.flow_cache.peak_bytes, 0u);
  EXPECT_LE(stream_long.flow_cache.peak_bytes, 256u * 1024u + 4096u);
  EXPECT_LE(stream_long.flow_cache.peak_bytes,
            stream_short.flow_cache.peak_bytes +
                stream_short.flow_cache.peak_bytes / 2);
}

}  // namespace
}  // namespace roomnet
