// Tests for roomnet::faults: the deterministic fault plan, switch-level
// fault application, device churn, and the pipeline's degradation contract
// (seeded faulty runs byte-identical at every worker count; the all-off
// plan reproducing the fault-free pipeline exactly).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/pipeline.hpp"
#include "faults/churn.hpp"
#include "faults/faults.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) {
  return MacAddress::from_u64(0x02fa000000000ull | n);
}

/// Minimal two-host LAN with pre-seeded ARP, so exactly one data frame per
/// send_udp crosses the switch and every fault draw maps to a data frame.
struct FaultLan {
  EventLoop loop;
  Switch net{loop};
  Host sender{net, mac_n(1), "sender"};
  Host receiver{net, mac_n(2), "receiver"};
  int received = 0;

  FaultLan() {
    sender.set_static_ip(Ipv4Address(192, 168, 77, 1));
    receiver.set_static_ip(Ipv4Address(192, 168, 77, 2));
    sender.add_arp_entry(receiver.ip(), receiver.mac());
    receiver.add_arp_entry(sender.ip(), sender.mac());
    receiver.open_udp(
        9000, [this](Host&, const PacketView&, const UdpDatagramView&) { ++received; });
  }

  void send_one() {
    sender.send_udp(receiver.ip(), 9001, 9000, bytes_of("fault-probe"));
  }
  void settle() { loop.run_until(loop.now() + SimTime::from_seconds(1)); }
};

bool same_fate(const Switch::FrameFate& a, const Switch::FrameFate& b) {
  return a.drop == b.drop && a.copies == b.copies &&
         a.extra_delay == b.extra_delay && a.truncate_to == b.truncate_to &&
         a.corrupt_at == b.corrupt_at && a.corrupt_mask == b.corrupt_mask;
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultsUnit, DefaultPlanIsDisabledAndDrawsNothing) {
  faults::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(faults::FaultConfig{}.any());
  for (int i = 0; i < 10; ++i) {
    const auto fate = plan.next_frame_fate(128);
    EXPECT_FALSE(fate.drop);
    EXPECT_EQ(fate.copies, 1);
    EXPECT_EQ(fate.extra_delay, SimTime{});
    EXPECT_EQ(fate.truncate_to, 0u);
    EXPECT_EQ(fate.corrupt_at, 0u);
  }
  EXPECT_FALSE(plan.draw_churn());
}

TEST(FaultsUnit, SameSeedSameFateSequence) {
  faults::FaultConfig config;
  config.loss = 0.1;
  config.duplicate = 0.1;
  config.reorder = 0.1;
  config.jitter_max_us = 500;
  config.truncate = 0.1;
  config.corrupt = 0.1;
  faults::FaultPlan a(config, 1234), b(config, 1234), c(config, 999);
  bool any_divergence_from_c = false;
  for (int i = 0; i < 500; ++i) {
    const std::size_t size = 64 + static_cast<std::size_t>(i % 900);
    const auto fa = a.next_frame_fate(size);
    const auto fb = b.next_frame_fate(size);
    const auto fc = c.next_frame_fate(size);
    EXPECT_TRUE(same_fate(fa, fb)) << "frame " << i;
    if (!same_fate(fa, fc)) any_divergence_from_c = true;
  }
  EXPECT_TRUE(any_divergence_from_c);  // the seed actually matters
}

TEST(FaultsUnit, FaultSeedEnvOverride) {
  unsetenv("ROOMNET_FAULT_SEED");
  const std::uint64_t derived = faults::fault_seed(42);
  EXPECT_NE(derived, 42u);  // never aliases the sim stream
  EXPECT_EQ(derived, faults::fault_seed(42));
  setenv("ROOMNET_FAULT_SEED", "0xdead", 1);
  EXPECT_EQ(faults::fault_seed(42), 0xdeadu);
  setenv("ROOMNET_FAULT_SEED", "not-a-number", 1);
  EXPECT_EQ(faults::fault_seed(42), derived);  // bad values fall back
  unsetenv("ROOMNET_FAULT_SEED");
}

// ------------------------------------------------------------ switch faults

TEST(FaultsUnit, TotalLossDeliversNothing) {
  FaultLan lan;
  faults::FaultConfig config;
  config.loss = 1.0;
  faults::FaultPlan plan(config, 7);
  plan.install(lan.net);
  for (int i = 0; i < 5; ++i) lan.send_one();
  lan.settle();
  EXPECT_EQ(lan.received, 0);
}

TEST(FaultsUnit, DuplicationDeliversTwice) {
  FaultLan lan;
  faults::FaultConfig config;
  config.duplicate = 1.0;
  faults::FaultPlan plan(config, 7);
  plan.install(lan.net);
  lan.send_one();
  lan.settle();
  EXPECT_EQ(lan.received, 2);
}

TEST(FaultsUnit, OfflineHostNeitherReceivesNorTransmits) {
  FaultLan lan;
  lan.receiver.set_online(false);
  lan.send_one();
  lan.settle();
  EXPECT_EQ(lan.received, 0);

  lan.receiver.set_online(true);
  lan.send_one();
  lan.settle();
  EXPECT_EQ(lan.received, 1);

  lan.sender.set_online(false);
  lan.send_one();
  lan.settle();
  EXPECT_EQ(lan.received, 1);  // offline sender's frame never left the NIC
}

TEST(FaultsChurn, DriverTogglesHostsAndLogsDeterministically) {
  const auto run_once = [] {
    FaultLan lan;
    faults::FaultConfig config;
    config.churn = 0.5;
    config.churn_period_s = 10;
    config.churn_downtime_s = 5;
    faults::FaultPlan plan(config, 99);
    faults::ChurnDriver driver(plan);
    driver.attach(lan.loop, {&lan.sender, &lan.receiver});
    lan.loop.run_until(SimTime::from_seconds(100));
    // Stop ticking, then drain the recovery scheduled by the last tick.
    driver.detach();
    lan.loop.run_until(SimTime::from_seconds(106));
    std::vector<std::pair<std::string, bool>> log;
    for (const auto& event : driver.log())
      log.emplace_back(event.label, event.online);
    return log;
  };
  const auto log = run_once();
  EXPECT_FALSE(log.empty());
  // Every offline transition recovers (downtime < period keeps them paired).
  int offline = 0, online = 0;
  for (const auto& [label, up] : log) up ? ++online : ++offline;
  EXPECT_EQ(offline, online);
  EXPECT_EQ(log, run_once());  // same seed, same outages
}

// ------------------------------------------------------------ the pipeline

PipelineConfig small_config() {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 5;
  config.run_scan = true;
  config.run_crowd = false;
  return config;
}

void expect_identical(const PipelineResults& r, const PipelineResults& base) {
  EXPECT_EQ(r.local_packets, base.local_packets);
  EXPECT_EQ(r.flows, base.flows);
  EXPECT_EQ(r.population, base.population);
  EXPECT_EQ(r.usage.by_device, base.usage.by_device);
  ASSERT_EQ(r.graph.edges.size(), base.graph.edges.size());
  for (std::size_t i = 0; i < r.graph.edges.size(); ++i) {
    EXPECT_EQ(r.graph.edges[i].a, base.graph.edges[i].a) << i;
    EXPECT_EQ(r.graph.edges[i].b, base.graph.edges[i].b) << i;
    EXPECT_EQ(r.graph.edges[i].packets, base.graph.edges[i].packets) << i;
  }
  EXPECT_EQ(r.crossval.matrix, base.crossval.matrix);
  EXPECT_EQ(r.crossval.total, base.crossval.total);
  EXPECT_EQ(r.crossval.agreed, base.crossval.agreed);
  EXPECT_EQ(r.crossval.disagreed, base.crossval.disagreed);
  EXPECT_EQ(r.exposure.cells, base.exposure.cells);
  EXPECT_EQ(r.responses.matches.size(), base.responses.matches.size());
  ASSERT_EQ(r.scan_reports.size(), base.scan_reports.size());
  for (std::size_t i = 0; i < r.scan_reports.size(); ++i) {
    EXPECT_EQ(r.scan_reports[i].open_tcp, base.scan_reports[i].open_tcp) << i;
    EXPECT_EQ(r.scan_reports[i].open_udp, base.scan_reports[i].open_udp) << i;
    EXPECT_EQ(r.scan_reports[i].closed_udp, base.scan_reports[i].closed_udp)
        << i;
  }
  EXPECT_EQ(r.audits.size(), base.audits.size());
  ASSERT_EQ(r.vulnerabilities.size(), base.vulnerabilities.size());
  for (std::size_t i = 0; i < r.vulnerabilities.size(); ++i) {
    EXPECT_EQ(r.vulnerabilities[i].mac, base.vulnerabilities[i].mac) << i;
    EXPECT_EQ(r.vulnerabilities[i].id, base.vulnerabilities[i].id) << i;
    EXPECT_EQ(r.vulnerabilities[i].evidence, base.vulnerabilities[i].evidence)
        << i;
  }
  EXPECT_EQ(r.app_stats.total_apps, base.app_stats.total_apps);
  EXPECT_EQ(r.exfiltration.size(), base.exfiltration.size());
  EXPECT_EQ(r.degraded, base.degraded);
}

TEST(FaultsDeterminism, SeededFaultyRunByteIdenticalAcrossThreadCounts) {
  PipelineConfig config = small_config();
  config.faults.loss = 0.05;
  config.faults.duplicate = 0.02;
  config.faults.reorder = 0.02;
  config.faults.jitter_max_us = 2000;
  config.faults.truncate = 0.01;
  config.faults.corrupt = 0.01;
  config.faults.churn = 0.05;
  config.faults.churn_period_s = 120;
  config.faults.churn_downtime_s = 60;

  const auto run_with = [&](int threads) {
    PipelineConfig c = config;
    c.threads = threads;
    Pipeline pipeline(c);
    return pipeline.run();
  };
  const PipelineResults base = run_with(1);
  EXPECT_FALSE(base.scan_reports.empty());
  for (const int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(run_with(threads), base);
  }
}

TEST(FaultsAllOff, ReproducesFaultFreePipelineExactly) {
  const PipelineConfig config = small_config();

  Pipeline fault_free(config);  // never constructs a fault path
  const PipelineResults base = fault_free.run();
  EXPECT_TRUE(base.degraded.empty());

  PipelineConfig all_off = config;
  all_off.faults = faults::FaultConfig{};  // explicit all-zero plan
  Pipeline zeroed(all_off);
  const PipelineResults r = zeroed.run();
  EXPECT_TRUE(r.degraded.empty());
  expect_identical(r, base);
}

TEST(FaultsChurn, ChurnedPipelineStillProducesResults) {
  PipelineConfig config = small_config();
  config.app_sample = 0;
  config.faults.loss = 0.1;
  config.faults.churn = 0.3;
  config.faults.churn_period_s = 60;
  config.faults.churn_downtime_s = 120;

  Pipeline pipeline(config);
  const PipelineResults results = pipeline.run();

  // The run absorbs the outages instead of failing: full population, scan
  // reports for whoever held a lease, and a populated degradation ledger.
  EXPECT_EQ(results.population.size(), 93u);
  EXPECT_FALSE(results.scan_reports.empty());
  ASSERT_FALSE(results.degraded.empty());
  bool churn_entries = false;
  for (const auto& entry : results.degraded) {
    EXPECT_FALSE(entry.stage.empty());
    EXPECT_FALSE(entry.reason.empty());
    if (entry.stage == "churn") churn_entries = true;
  }
  EXPECT_TRUE(churn_entries);
}

}  // namespace
}  // namespace roomnet
