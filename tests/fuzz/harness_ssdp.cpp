// Structure-aware SSDP/UPnP fuzz. Phase A: the raw input through
// decode_ssdp and the UPnP XML description parser. Phase B: build a
// well-formed M-SEARCH/NOTIFY/response and mutate at header granularity —
// duplicate/drop/splice header lines, break the colon separator, blow up
// MX, damage the start line, truncate mid-CRLF — then require total
// decodes.
#include <string>
#include <vector>

#include "fuzz_input.hpp"
#include "fuzz_mutate.hpp"
#include "harness.hpp"
#include "proto/ssdp.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "ssdp";
constexpr std::string_view kTokenChars =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:-._/";

void check_idempotent(const SsdpMessage& decoded) {
  const Bytes e2 = encode_ssdp(decoded);
  const auto d2 = decode_ssdp(BytesView(e2));
  ROOMNET_FUZZ_CHECK(d2.has_value(), kName,
                     "re-encoded message no longer decodes");
  const Bytes e3 = encode_ssdp(*d2);
  ROOMNET_FUZZ_CHECK(e2 == e3, kName, "decode-encode cycle is not a fixpoint");
}

Bytes template_message(FuzzInput& in) {
  SsdpMessage msg;
  static constexpr SsdpKind kKinds[] = {SsdpKind::kMSearch, SsdpKind::kNotify,
                                        SsdpKind::kResponse};
  msg.kind = kKinds[in.u8() % 3];
  msg.search_target = in.boolean() ? "ssdp:all"
                                   : "urn:schemas-upnp-org:device:" +
                                         in.str(in.range(1, 12), kTokenChars);
  msg.usn = "uuid:" + in.str(in.range(1, 16), kTokenChars);
  msg.server = "Linux/" + in.str(in.range(1, 8), kTokenChars) + " UPnP/1.0";
  msg.location = "http://192.168.10." + std::to_string(in.u8()) + ":" +
                 std::to_string(in.u16()) + "/desc.xml";
  msg.nts = in.boolean() ? "ssdp:alive" : "ssdp:byebye";
  msg.mx = static_cast<int>(in.range(1, 5));
  return encode_ssdp(msg);
}

std::vector<std::string> split_lines(const Bytes& wire) {
  std::vector<std::string> lines;
  std::string cur;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i + 1 < wire.size() && wire[i] == '\r' && wire[i + 1] == '\n') {
      lines.push_back(cur);
      cur.clear();
      ++i;
    } else {
      cur += static_cast<char>(wire[i]);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

Bytes join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += "\r\n";
  }
  return Bytes(out.begin(), out.end());
}

}  // namespace

int fuzz_ssdp(BytesView data) {
  if (data.size() > 65536) return 0;

  // Phase A: raw input through both parsers.
  if (const auto decoded = decode_ssdp(data)) check_idempotent(*decoded);
  const std::string_view as_text(reinterpret_cast<const char*>(data.data()),
                                 data.size());
  if (const auto desc = UpnpDeviceDescription::from_xml(as_text)) {
    // Fields scraped from hostile XML may themselves contain markup, which
    // legitimately shifts tag boundaries on a re-parse — so only require
    // that re-serialization parses at all, not a byte fixpoint.
    const auto again = UpnpDeviceDescription::from_xml(desc->to_xml());
    ROOMNET_FUZZ_CHECK(again.has_value(), kName,
                       "re-serialized UPnP description no longer parses");
  }

  // Phase B: header-granularity mutations of a well-formed message.
  FuzzInput in(data);
  Bytes wire = template_message(in);
  const std::size_t mutations = in.range(1, 6);
  for (std::size_t i = 0; i < mutations; ++i) {
    auto lines = split_lines(wire);
    if (lines.empty()) break;
    switch (in.u8() % 7) {
      case 0:  // duplicate a header line
        lines.insert(lines.begin() +
                         static_cast<std::ptrdiff_t>(in.below(lines.size())),
                     lines[in.below(lines.size())]);
        break;
      case 1:  // drop a line (possibly the blank terminator)
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(in.below(lines.size())));
        break;
      case 2: {  // break the colon separator on a header line
        auto& line = lines[in.below(lines.size())];
        const auto colon = line.find(':');
        if (colon != std::string::npos) line[colon] = ' ';
        break;
      }
      case 3: {  // giant / negative-looking MX
        for (auto& line : lines)
          if (line.rfind("MX:", 0) == 0)
            line = "MX: " + (in.boolean() ? std::string(64, '9')
                                          : "-" + std::to_string(in.u16()));
        break;
      }
      case 4:  // damage the start line
        lines[0] = in.str(in.range(0, 24), kTokenChars);
        break;
      case 5: {  // inject an arbitrary header
        lines.insert(
            lines.begin() + 1,
            in.str(in.range(1, 10), kTokenChars) + ": " +
                in.str(in.range(0, 24), kTokenChars));
        break;
      }
      default:
        break;
    }
    wire = join_lines(lines);
    if (in.boolean()) truncate(wire, in);
  }
  if (const auto decoded = decode_ssdp(wire)) check_idempotent(*decoded);
  return 0;
}

}  // namespace roomnet::fuzz
