// LLVMFuzzerTestOneInput for one harness, selected at compile time: CMake
// builds this file once per fuzz_<name> executable with ROOMNET_FUZZ_ENTRY
// defined to the harness entry point. Under clang the symbol is driven by
// libFuzzer (-fsanitize=fuzzer); under gcc the standalone driver in
// standalone_driver.cpp supplies main() with a compatible CLI.
#include <cstddef>
#include <cstdint>

#include "harness.hpp"

#ifndef ROOMNET_FUZZ_ENTRY
#error "ROOMNET_FUZZ_ENTRY must name a harness entry point (see CMakeLists)"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return roomnet::fuzz::ROOMNET_FUZZ_ENTRY(roomnet::BytesView(data, size));
}
