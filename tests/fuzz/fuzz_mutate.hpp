// Field-granularity mutation helpers shared by the structure-aware payload
// harnesses: instead of flipping random bits, each harness encodes a
// well-formed message and then rewrites the specific fields attackers
// control — length fields, counts, compression pointers, TLV lengths —
// with wire-meaningful values.
#pragma once

#include <cstdint>

#include "fuzz_input.hpp"
#include "netcore/bytes.hpp"

namespace roomnet::fuzz {

inline void put_u16(Bytes& buf, std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf.size()) return;
  buf[offset] = static_cast<std::uint8_t>(v >> 8);
  buf[offset + 1] = static_cast<std::uint8_t>(v);
}

inline void put_u24(Bytes& buf, std::size_t offset, std::uint32_t v) {
  if (offset + 3 > buf.size()) return;
  buf[offset] = static_cast<std::uint8_t>(v >> 16);
  buf[offset + 1] = static_cast<std::uint8_t>(v >> 8);
  buf[offset + 2] = static_cast<std::uint8_t>(v);
}

/// Boundary values that stress length/count arithmetic.
inline constexpr std::uint16_t kInteresting16[] = {
    0x0000, 0x0001, 0x007f, 0x0080, 0x00ff, 0x0100,
    0x7fff, 0x8000, 0xc00c, 0xfffe, 0xffff,
};

inline std::uint16_t interesting_u16(FuzzInput& in) {
  return kInteresting16[in.u8() % (sizeof(kInteresting16) / 2)];
}

/// Truncate to an input-chosen prefix (possibly empty, possibly full).
inline void truncate(Bytes& buf, FuzzInput& in) {
  buf.resize(in.below(buf.size() + 1));
}

}  // namespace roomnet::fuzz
