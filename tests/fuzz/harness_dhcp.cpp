// Structure-aware DHCP fuzz. Phase A: raw decode + fixpoint. Phase B:
// encode a well-formed DISCOVER (hostname, vendor class, parameter request
// list — the §5.1 option surface) and mutate at field granularity: option
// TLV length bytes, option codes, the magic cookie, the op/htype header
// bytes, and truncation, then require a total decode.
#include "fuzz_input.hpp"
#include "fuzz_mutate.hpp"
#include "harness.hpp"
#include "proto/dhcp.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "dhcp";
constexpr std::string_view kHostChars =
    "abcdefghijklmnopqrstuvwxyz0123456789-";

// BOOTP fixed header is 236 bytes; options follow the 4-byte magic cookie.
constexpr std::size_t kCookieOffset = 236;
constexpr std::size_t kOptionsOffset = 240;

void check_idempotent(const DhcpMessage& decoded) {
  const Bytes e2 = encode_dhcp(decoded);
  const auto d2 = decode_dhcp(BytesView(e2));
  ROOMNET_FUZZ_CHECK(d2.has_value(), kName,
                     "re-encoded message no longer decodes");
  const Bytes e3 = encode_dhcp(*d2);
  ROOMNET_FUZZ_CHECK(e2 == e3, kName, "decode-encode cycle is not a fixpoint");
}

Bytes template_discover(FuzzInput& in) {
  DhcpMessage msg;
  msg.is_request = true;
  msg.xid = in.u32();
  msg.client_mac = in.mac();
  msg.set_message_type(DhcpMessageType::kDiscover);
  msg.set_hostname(in.str(in.range(1, 16), kHostChars));
  msg.set_vendor_class("udhcp " + in.str(in.range(1, 8), kHostChars));
  std::vector<std::uint8_t> prl;
  const std::size_t asks = in.range(1, 8);
  for (std::size_t i = 0; i < asks; ++i) prl.push_back(in.u8());
  msg.set_parameter_request_list(prl);
  return encode_dhcp(msg);
}

/// Offsets of every option length byte in the TLV area (walked the same way
/// the decoder walks them, stopping at END).
std::vector<std::size_t> option_length_offsets(const Bytes& wire) {
  std::vector<std::size_t> offsets;
  std::size_t pos = kOptionsOffset;
  while (pos + 1 < wire.size()) {
    const std::uint8_t code = wire[pos];
    if (code == 255) break;
    if (code == 0) {
      ++pos;
      continue;
    }
    offsets.push_back(pos + 1);
    pos += 2 + wire[pos + 1];
  }
  return offsets;
}

}  // namespace

int fuzz_dhcp(BytesView data) {
  if (data.size() > 65536) return 0;

  if (const auto decoded = decode_dhcp(data)) check_idempotent(*decoded);

  FuzzInput in(data);
  Bytes wire = template_discover(in);
  const std::size_t mutations = in.range(1, 8);
  for (std::size_t i = 0; i < mutations && !wire.empty(); ++i) {
    switch (in.u8() % 6) {
      case 0: {  // option length byte: overflow past the buffer end
        const auto offsets = option_length_offsets(wire);
        if (!offsets.empty()) {
          const std::size_t at = offsets[in.below(offsets.size())];
          wire[at] = in.boolean() ? 0xff : in.u8();
        }
        break;
      }
      case 1: {  // option code byte: pad/end/unknown codes mid-stream
        const auto offsets = option_length_offsets(wire);
        if (!offsets.empty()) {
          const std::size_t at = offsets[in.below(offsets.size())] - 1;
          static constexpr std::uint8_t kCodes[] = {0, 255, 53, 12, 55, 61};
          wire[at] = in.boolean() ? kCodes[in.u8() % 6] : in.u8();
        }
        break;
      }
      case 2:  // magic cookie corruption
        if (kCookieOffset + 4 <= wire.size())
          wire[kCookieOffset + (in.u8() % 4)] = in.u8();
        break;
      case 3:  // header bytes: op/htype/hlen/hops
        if (wire.size() >= 4) wire[in.u8() % 4] = in.u8();
        break;
      case 4:
        truncate(wire, in);
        break;
      default:
        wire[in.below(wire.size())] = in.u8();
        break;
    }
  }
  if (const auto decoded = decode_dhcp(wire)) check_idempotent(*decoded);
  return 0;
}

}  // namespace roomnet::fuzz
