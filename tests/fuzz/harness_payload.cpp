// Catch-all payload-decoder fuzz: every remaining application-layer parser
// the classifiers feed attacker-controlled UDP/TCP payloads into. Each
// decoder must be total on the raw input, and a successful decode must
// survive a re-encode cycle. The JSON parser is exercised both directly
// and through the TP-Link/Tuya autokey+frame paths (the route by which a
// hostile datagram once reached unbounded parser recursion).
#include <string_view>

#include "harness.hpp"
#include "proto/coap.hpp"
#include "proto/dhcpv6.hpp"
#include "proto/http.hpp"
#include "proto/json.hpp"
#include "proto/matter.hpp"
#include "proto/media.hpp"
#include "proto/netbios.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "payload";

template <typename Msg, typename Enc, typename Dec>
void idempotent(const char* what, const Msg& decoded, Enc&& enc, Dec&& dec) {
  const Bytes e2 = enc(decoded);
  const auto d2 = dec(BytesView(e2));
  if (!d2.has_value()) fuzz_fail(kName, what);
  const Bytes e3 = enc(*d2);
  if (e2 != e3) fuzz_fail(kName, what);
}

}  // namespace

int fuzz_payload(BytesView data) {
  if (data.size() > 65536) return 0;
  const std::string_view as_text(reinterpret_cast<const char*>(data.data()),
                                 data.size());

  if (const auto m = decode_coap(data))
    idempotent("coap", *m, encode_coap, decode_coap);

  if (const auto m = decode_tuya_frame(data))
    idempotent("tuya-frame", *m, encode_tuya_frame, decode_tuya_frame);
  if (const auto d = decode_tuya_discovery(data)) {
    const auto v = d->to_json();
    if (!TuyaDiscovery::from_json(v).has_value())
      fuzz_fail(kName, "tuya discovery JSON cycle");
  }

  // TP-Link autokey "encryption" decodes any byte string; the interesting
  // property is that the inner JSON parse is total.
  (void)decode_tplink_udp(data);
  (void)decode_tplink_tcp(data);

  if (const auto m = decode_netbios(data))
    idempotent("netbios", *m, encode_netbios, decode_netbios);
  (void)is_netbios_wildcard_scan(data);
  (void)netbios_decode_name(as_text);

  if (const auto m = decode_matter(data))
    idempotent("matter", *m, encode_matter, decode_matter);
  (void)looks_like_matter(data);

  if (const auto m = decode_rtp(data))
    idempotent("rtp", *m, encode_rtp, decode_rtp);
  (void)looks_like_rtp(data);
  if (const auto m = decode_stun(data))
    idempotent("stun", *m, encode_stun, decode_stun);
  (void)looks_like_stun(data);

  if (const auto m = decode_dhcpv6(data))
    idempotent("dhcpv6", *m, encode_dhcpv6, decode_dhcpv6);
  if (const auto m = decode_dhcpv6(data)) {
    (void)m->client_mac();
    (void)m->fqdn();
  }

  if (const auto m = decode_http_request(data))
    idempotent("http-request", *m, encode_http_request, decode_http_request);
  if (const auto m = decode_http_response(data))
    idempotent("http-response", *m, encode_http_response,
               decode_http_response);
  (void)looks_like_http(data);

  // Bare JSON: parse must be total (bounded recursion included), and a
  // successful parse must re-serialize to parseable text.
  if (const auto v = json::parse(as_text)) {
    if (!json::parse(v->dump()).has_value())
      fuzz_fail(kName, "JSON dump no longer parses");
  }
  return 0;
}

}  // namespace roomnet::fuzz
