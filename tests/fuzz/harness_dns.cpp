// Structure-aware DNS/mDNS fuzz. Phase A treats the input as a raw message:
// decode must be total, and a successful decode must re-encode to a
// fixpoint. Phase B rebuilds a well-formed mDNS service advertisement and
// mutates it at field granularity — section counts, label length bytes,
// compression pointers (including self-referential and forward loops),
// rdlength, truncation — the exact adversarial classes the decoder's
// pointer-loop and label caps exist for.
#include "fuzz_input.hpp"
#include "fuzz_mutate.hpp"
#include "harness.hpp"
#include "proto/dns.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "dns";
constexpr std::string_view kLabelChars =
    "abcdefghijklmnopqrstuvwxyz0123456789-_ ";

void check_idempotent(const DnsMessage& decoded) {
  const Bytes e2 = encode_dns(decoded);
  const auto d2 = decode_dns(BytesView(e2));
  ROOMNET_FUZZ_CHECK(d2.has_value(), kName,
                     "re-encoded message no longer decodes");
  const Bytes e3 = encode_dns(*d2);
  ROOMNET_FUZZ_CHECK(e2 == e3, kName, "decode-encode cycle is not a fixpoint");
}

DnsName advertisement_name(FuzzInput& in) {
  DnsName name;
  name.labels.push_back(in.str(in.range(1, 16), kLabelChars));
  name.labels.push_back("_" + in.str(in.range(1, 8), kLabelChars));
  name.labels.push_back(in.boolean() ? "_tcp" : "_udp");
  name.labels.push_back("local");
  return name;
}

/// A realistic mDNS advertisement: PTR + SRV + TXT + A, the shape every
/// device in the paper's testbed broadcasts.
Bytes template_advertisement(FuzzInput& in) {
  DnsMessage msg;
  msg.is_response = true;
  msg.authoritative = true;
  const DnsName service = advertisement_name(in);
  DnsName instance = service;
  instance.labels.insert(instance.labels.begin(),
                         in.str(in.range(1, 20), kLabelChars));
  msg.answers.push_back(DnsRecord::make_ptr(service, instance));
  SrvData srv;
  srv.port = in.u16();
  srv.target = DnsName::from_string(in.str(in.range(1, 12), kLabelChars) +
                                    ".local");
  msg.answers.push_back(DnsRecord::make_srv(instance, srv));
  msg.answers.push_back(DnsRecord::make_txt(
      instance, {"id=" + in.str(in.range(1, 12), kLabelChars),
                 "md=" + in.str(in.range(1, 12), kLabelChars)}));
  msg.additional.push_back(DnsRecord::make_a(srv.target, in.ipv4()));
  return encode_dns(msg);
}

}  // namespace

int fuzz_dns(BytesView data) {
  if (data.size() > 65536) return 0;

  // Phase A: the input is the wire message.
  if (const auto decoded = decode_dns(data)) check_idempotent(*decoded);

  // Phase B: field-granularity mutations of a well-formed advertisement.
  FuzzInput in(data);
  Bytes wire = template_advertisement(in);
  const std::size_t mutations = in.range(1, 8);
  for (std::size_t i = 0; i < mutations && !wire.empty(); ++i) {
    switch (in.u8() % 6) {
      case 0:  // section counts (qd/an/ns/ar at offsets 4/6/8/10)
        put_u16(wire, 4 + 2 * (in.u8() % 4), interesting_u16(in));
        break;
      case 1: {  // compression pointer, possibly self/backward/forward loop
        if (wire.size() <= 12) break;  // a truncation may have eaten the body
        const std::size_t at = 12 + in.below(wire.size() - 12);
        wire[at] = static_cast<std::uint8_t>(0xc0 | (in.u8() & 0x3f));
        if (at + 1 < wire.size()) wire[at + 1] = in.u8();
        break;
      }
      case 2:  // label length byte: over-long (>63) or huge
        wire[in.below(wire.size())] = in.boolean() ? 0xff : (in.u8() | 0x40);
        break;
      case 3:  // rdlength-ish u16 anywhere in the record area
        put_u16(wire, 12 + in.below(wire.size()), interesting_u16(in));
        break;
      case 4:
        truncate(wire, in);
        break;
      default:  // plain byte rewrite
        wire[in.below(wire.size())] = in.u8();
        break;
    }
  }
  // The mutated message must decode totally (accept or cleanly reject —
  // never crash, hang, or over-read), and an accept must still round-trip.
  if (const auto decoded = decode_dns(wire)) check_idempotent(*decoded);
  return 0;
}

}  // namespace roomnet::fuzz
