// Standalone fuzz driver for toolchains without libFuzzer (gcc): replays a
// corpus and runs a deterministic mutation loop against the harness's
// LLVMFuzzerTestOneInput, accepting the libFuzzer flags scripts/check.sh
// and CI use, so the same command line works under either engine:
//
//   fuzz_dns [-max_total_time=S] [-runs=N] [-seed=N]
//            [-artifact_prefix=PATH/] [-minimize_crash=1] corpus_dir file...
//
// Corpus entries may be raw .bin files or reviewable .hex files (hex bytes,
// whitespace ignored, '#' comments). On a crash — an aborting invariant, a
// sanitizer report, or a fatal signal — the dying input is written to
// <artifact_prefix>crash-<pid>.bin before the process exits, so every
// finding leaves a reproducer. -minimize_crash=1 <file> greedily shrinks a
// crashing input in forked children and writes the smallest reproducer to
// <artifact_prefix>minimized.bin.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "netcore/bytes.hpp"
#include "netcore/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
// Present when a sanitizer runtime is linked; lets us persist the dying
// input on sanitizer reports that _exit without raising a signal.
extern "C" void __sanitizer_set_death_callback(void (*callback)(void))
    __attribute__((weak));

namespace {

using roomnet::Bytes;
using roomnet::Rng;

// -- crash artifact plumbing (async-signal-safe) ----------------------------

char g_artifact_path[4096] = "crash.bin";
const std::uint8_t* g_current_data = nullptr;
std::size_t g_current_size = 0;

void write_artifact() {
  if (g_current_data == nullptr) return;
  const int fd =
      open(g_artifact_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return;
  std::size_t done = 0;
  while (done < g_current_size) {
    const ssize_t n =
        write(fd, g_current_data + done, g_current_size - done);
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  close(fd);
  static const char kMsg[] = "\nartifact written: ";
  (void)!write(2, kMsg, sizeof(kMsg) - 1);
  (void)!write(2, g_artifact_path, strnlen(g_artifact_path,
                                           sizeof(g_artifact_path)));
  (void)!write(2, "\n", 1);
}

void crash_handler(int sig) {
  write_artifact();
  signal(sig, SIG_DFL);
  raise(sig);
}

void install_crash_handlers() {
  if (__sanitizer_set_death_callback != nullptr) {
    // A sanitizer runtime owns the fatal-signal handlers; taking them over
    // would swallow its report. Its death callback fires after the report
    // is printed, for signals and sanitizer errors alike. SIGABRT (the
    // fuzz_fail path) is not a sanitizer error, so handle it ourselves.
    __sanitizer_set_death_callback(write_artifact);
    signal(SIGABRT, crash_handler);
    return;
  }
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE})
    signal(sig, crash_handler);
}

int run_one(const Bytes& input) {
  g_current_data = input.data();
  g_current_size = input.size();
  const int rc = LLVMFuzzerTestOneInput(input.data(), input.size());
  g_current_data = nullptr;
  return rc;
}

// -- corpus loading ---------------------------------------------------------

bool load_hex(const std::string& path, Bytes& out) {
  std::ifstream f(path);
  if (!f) return false;
  out.clear();
  int hi = -1;
  char c = 0;
  bool comment = false;
  while (f.get(c)) {
    if (c == '#') comment = true;
    if (c == '\n') comment = false;
    if (comment || std::isspace(static_cast<unsigned char>(c))) continue;
    int nibble = -1;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else return false;
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<std::uint8_t>(hi << 4 | nibble));
      hi = -1;
    }
  }
  return hi < 0;  // reject odd nibble counts
}

bool load_file(const std::string& path, Bytes& out) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".hex")
    return load_hex(path, out);
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out.assign(std::istreambuf_iterator<char>(f),
             std::istreambuf_iterator<char>());
  return true;
}

void collect_inputs(const std::string& path,
                    std::vector<std::pair<std::string, Bytes>>& corpus) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path, ec))
      if (entry.is_regular_file()) files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());  // deterministic replay order
    for (const auto& f : files) {
      Bytes data;
      if (load_file(f, data)) corpus.emplace_back(f, std::move(data));
    }
  } else {
    Bytes data;
    if (load_file(path, data)) corpus.emplace_back(path, std::move(data));
    else std::fprintf(stderr, "WARNING: cannot read %s\n", path.c_str());
  }
}

// -- mutation engine --------------------------------------------------------

Bytes mutate(const Bytes& seed, const std::vector<std::pair<std::string, Bytes>>& corpus,
             Rng& rng) {
  Bytes out = seed;
  const int rounds = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < rounds; ++i) {
    switch (rng.below(8)) {
      case 0:  // bit flip
        if (!out.empty())
          out[rng.below(out.size())] ^= static_cast<std::uint8_t>(
              1u << rng.below(8));
        break;
      case 1:  // byte set
        if (!out.empty())
          out[rng.below(out.size())] = static_cast<std::uint8_t>(rng.next_u64());
        break;
      case 2: {  // insert random bytes
        const std::size_t n = 1 + rng.below(8);
        const std::size_t at = rng.below(out.size() + 1);
        const Bytes junk = rng.bytes(n);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                   junk.end());
        break;
      }
      case 3: {  // erase a range
        if (out.empty()) break;
        const std::size_t at = rng.below(out.size());
        const std::size_t n = 1 + rng.below(out.size() - at);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                  out.begin() + static_cast<std::ptrdiff_t>(at + n));
        break;
      }
      case 4: {  // duplicate a range in place
        if (out.empty() || out.size() > 65536) break;
        const std::size_t at = rng.below(out.size());
        const std::size_t n = 1 + rng.below(std::min<std::size_t>(
                                      out.size() - at, 64));
        const Bytes chunk(out.begin() + static_cast<std::ptrdiff_t>(at),
                          out.begin() + static_cast<std::ptrdiff_t>(at + n));
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
                   chunk.end());
        break;
      }
      case 5: {  // overwrite a u16 with a boundary value
        static constexpr std::uint16_t kBoundary[] = {
            0, 1, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000, 0xc00c, 0xffff};
        if (out.size() < 2) break;
        const std::size_t at = rng.below(out.size() - 1);
        const std::uint16_t v = kBoundary[rng.below(10)];
        out[at] = static_cast<std::uint8_t>(v >> 8);
        out[at + 1] = static_cast<std::uint8_t>(v);
        break;
      }
      case 6: {  // splice a block from another corpus entry
        if (corpus.empty()) break;
        const Bytes& other = corpus[rng.below(corpus.size())].second;
        if (other.empty()) break;
        const std::size_t at = rng.below(other.size());
        const std::size_t n = 1 + rng.below(std::min<std::size_t>(
                                      other.size() - at, 128));
        const std::size_t to = rng.below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(to),
                   other.begin() + static_cast<std::ptrdiff_t>(at),
                   other.begin() + static_cast<std::ptrdiff_t>(at + n));
        break;
      }
      default:  // truncate
        if (!out.empty()) out.resize(rng.below(out.size()));
        break;
    }
  }
  if (out.size() > 262144) out.resize(262144);
  return out;
}

// -- fork-based crash minimization ------------------------------------------

bool crashes_in_child(const Bytes& input) {
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Quiet the child's report spew; only its exit status matters.
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, 1);
      dup2(devnull, 2);
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0);
}

int minimize(const Bytes& crash, const std::string& artifact_prefix) {
  if (!crashes_in_child(crash)) {
    std::fprintf(stderr, "minimize: input does not crash, nothing to do\n");
    return 1;
  }
  Bytes best = crash;
  bool progress = true;
  while (progress && !best.empty()) {
    progress = false;
    // Chunked removal passes, halving chunk sizes down to single bytes.
    for (std::size_t chunk = best.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t at = 0; at + chunk <= best.size();) {
        Bytes candidate = best;
        candidate.erase(
            candidate.begin() + static_cast<std::ptrdiff_t>(at),
            candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (crashes_in_child(candidate)) {
          best = std::move(candidate);
          progress = true;
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  const std::string out = artifact_prefix + "minimized.bin";
  std::ofstream f(out, std::ios::binary);
  f.write(reinterpret_cast<const char*>(best.data()),
          static_cast<std::streamsize>(best.size()));
  f.close();
  std::fprintf(stderr, "minimize: %zu -> %zu bytes, written to %s\n",
               crash.size(), best.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double max_total_time = 0;
  long long runs = -1;  // -1: replay-only unless a time budget is given
  std::uint64_t seed = 1;
  std::string artifact_prefix;
  bool do_minimize = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      return arg.compare(0, len, name) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = flag_value("-max_total_time=")) {
      max_total_time = std::atof(v);
    } else if (const char* v = flag_value("-runs=")) {
      runs = std::atoll(v);
    } else if (const char* v = flag_value("-seed=")) {
      seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = flag_value("-artifact_prefix=")) {
      artifact_prefix = v;
    } else if (const char* v = flag_value("-minimize_crash=")) {
      do_minimize = std::atoi(v) != 0;
    } else if (flag_value("-help=") != nullptr || arg == "--help") {
      std::fprintf(stderr,
                   "usage: %s [-max_total_time=S] [-runs=N] [-seed=N]\n"
                   "          [-artifact_prefix=P/] [-minimize_crash=1]\n"
                   "          corpus_dir_or_file...\n",
                   argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "INFO: ignoring unsupported flag %s\n",
                   arg.c_str());
    } else {
      paths.push_back(arg);
    }
  }

  std::snprintf(g_artifact_path, sizeof(g_artifact_path), "%scrash-%d.bin",
                artifact_prefix.c_str(), static_cast<int>(getpid()));
  install_crash_handlers();

  std::vector<std::pair<std::string, Bytes>> corpus;
  for (const auto& path : paths) collect_inputs(path, corpus);

  if (do_minimize) {
    if (corpus.size() != 1) {
      std::fprintf(stderr, "minimize: pass exactly one crashing input\n");
      return 1;
    }
    return minimize(corpus[0].second, artifact_prefix);
  }

  // Replay phase: every corpus entry, in sorted order.
  for (const auto& [path, data] : corpus) run_one(data);
  std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

  // Mutation phase.
  const bool timed = max_total_time > 0;
  if (!timed && runs < 0) return 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long long>(max_total_time * 1000));
  Rng rng(seed);
  const Bytes empty;
  long long executed = 0;
  while ((runs < 0 || executed < runs) &&
         (!timed || std::chrono::steady_clock::now() < deadline)) {
    if (!timed && runs < 0) break;
    const Bytes& base =
        corpus.empty() ? empty : corpus[rng.below(corpus.size())].second;
    const Bytes candidate = mutate(base, corpus, rng);
    run_one(candidate);
    ++executed;
    if (executed % 4096 == 0)
      std::fprintf(stderr, "#%lld exec (standalone mutation loop)\n",
                   executed);
  }
  std::fprintf(stderr, "DONE: %lld mutated executions, 0 crashes\n", executed);
  return 0;
}
