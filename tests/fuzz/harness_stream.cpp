// FlowCache / StreamAnalyzer fuzz: the input is parsed as a framed record
// stream — an eviction-knob preamble, then [u16 length][frame bytes]
// records — decoded with decode_frame_view and folded through the full
// streaming path (the PR 7 tap body). After every fold the cache's bound
// invariants must hold: active flows never exceed max_flows, bytes_used
// never exceeds memcap beyond the one in-flight flow the cache refuses to
// self-evict, counters stay consistent. finish() must account for every
// created flow exactly once.
#include <set>

#include "fuzz_input.hpp"
#include "harness.hpp"
#include "netcore/packet_view.hpp"
#include "stream/stream.hpp"

namespace roomnet::fuzz {

namespace {
constexpr char kName[] = "stream";
constexpr std::size_t kMaxFrame = 2048;
constexpr std::size_t kMaxPackets = 512;

void check_bounds(const FlowCacheStats& stats,
                  const stream::StreamConfig& config) {
  if (config.max_flows != 0)
    ROOMNET_FUZZ_CHECK(stats.active_flows <= config.max_flows, kName,
                       "active_flows exceeds max_flows");
  if (config.memcap_bytes != 0) {
    // The flow being updated is never its own memcap victim, so usage may
    // overshoot by at most one flow's cost: its base accounting plus one
    // payload copy per direction, each bounded by the frame cap.
    const std::size_t slack = 2 * kMaxFrame + 1024;
    ROOMNET_FUZZ_CHECK(stats.bytes_used <= config.memcap_bytes + slack, kName,
                       "bytes_used exceeds memcap beyond one-flow slack");
  }
  ROOMNET_FUZZ_CHECK(stats.peak_flows >= stats.active_flows, kName,
                     "peak_flows below active_flows");
  ROOMNET_FUZZ_CHECK(stats.peak_bytes >= stats.bytes_used, kName,
                     "peak_bytes below bytes_used");
  ROOMNET_FUZZ_CHECK(stats.flows_created ==
                         stats.tcp_flows + stats.udp_flows,
                     kName, "flow creation counters disagree");
  ROOMNET_FUZZ_CHECK(stats.prunes_total() <= stats.flows_created, kName,
                     "more prunes than created flows");
}
}  // namespace

int fuzz_stream(BytesView data) {
  if (data.size() > 262144) return 0;
  FuzzInput in(data);

  stream::StreamConfig config;
  config.max_flows = in.below(9);  // 0 = unbounded
  static constexpr std::size_t kMemcaps[] = {0, 0, 2048, 8192, 65536};
  config.memcap_bytes = kMemcaps[in.u8() % 5];
  config.idle_timeout = SimTime::from_seconds(static_cast<double>(in.below(31)));
  config.established_timeout =
      SimTime::from_seconds(static_cast<double>(in.below(61)));

  stream::StreamAnalyzer analyzer(config, std::set<MacAddress>{});

  SimTime now = SimTime::from_us(0);
  std::uint64_t expected_cache_packets = 0;
  std::size_t packets = 0;
  while (in.remaining() >= 3 && packets < kMaxPackets) {
    now += SimTime::from_us(static_cast<std::int64_t>(in.u16()) * 1000);
    const std::size_t len = in.u16() % (kMaxFrame + 1);
    const Bytes frame = in.bytes(len);
    const auto view = decode_frame_view(BytesView(frame));
    if (!view) continue;
    // The cache folds exactly the IPv4 TCP/UDP packets; everything else
    // passes through the per-packet analyses only.
    if (view->ipv4 && (view->udp || view->tcp)) ++expected_cache_packets;
    analyzer.on_packet(now, *view);
    ++packets;
    check_bounds(analyzer.cache().stats(), config);
  }

  ROOMNET_FUZZ_CHECK(analyzer.packets() == packets, kName,
                     "analyzer packet count disagrees");

  const stream::StreamResults results = analyzer.finish();
  ROOMNET_FUZZ_CHECK(results.cache.packets == expected_cache_packets, kName,
                     "cache folded a different packet set than IPv4 TCP/UDP");
  ROOMNET_FUZZ_CHECK(results.cache.active_flows == 0, kName,
                     "flows survive finish()");
  ROOMNET_FUZZ_CHECK(results.cache.bytes_used == 0, kName,
                     "bytes_used nonzero after finish()");
  ROOMNET_FUZZ_CHECK(
      results.cache.prunes_total() == results.cache.flows_created, kName,
      "created flows not accounted for exactly once");
  ROOMNET_FUZZ_CHECK(results.flows == results.cache.prunes_total(), kName,
                     "StreamResults.flows disagrees with cache prunes");
  return 0;
}

}  // namespace roomnet::fuzz
