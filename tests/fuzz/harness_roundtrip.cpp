// Round-trip fuzz of every encoder: the input drives construction of one
// message (layer or payload protocol), which must encode, decode back, and
// re-encode to a byte-for-byte fixpoint. Protocols whose decode normalizes
// the wire form (DNS name compression, SSDP/HTTP header layout, NetBIOS
// name padding) are held to idempotence — encode∘decode applied twice must
// agree with itself — while everything else is held to strict equality of
// the first and second encode.
#include <string>

#include "harness.hpp"
#include "fuzz_input.hpp"
#include "netcore/packet.hpp"
#include "proto/coap.hpp"
#include "proto/dhcp.hpp"
#include "proto/dhcpv6.hpp"
#include "proto/dns.hpp"
#include "proto/http.hpp"
#include "proto/matter.hpp"
#include "proto/media.hpp"
#include "proto/netbios.hpp"
#include "proto/ssdp.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "roundtrip";
constexpr std::string_view kToken =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
constexpr std::string_view kUpper = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// encode → decode → re-encode. `strict`: e2 must equal e1; always: the
/// decode must succeed and a second cycle must be a fixpoint (e2 == e3).
template <typename Msg, typename Enc, typename Dec>
void roundtrip(const char* what, const Msg& m, Enc&& enc, Dec&& dec,
               bool strict) {
  const Bytes e1 = enc(m);
  const auto d1 = dec(BytesView(e1));
  if (!d1.has_value()) fuzz_fail(kName, what);  // encode output must decode
  const Bytes e2 = enc(*d1);
  if (strict && e1 != e2) fuzz_fail(kName, what);
  const auto d2 = dec(BytesView(e2));
  if (!d2.has_value()) fuzz_fail(kName, what);
  const Bytes e3 = enc(*d2);
  if (e2 != e3) fuzz_fail(kName, what);
}

DnsName fuzz_dns_name(FuzzInput& in) {
  DnsName name;
  const std::size_t labels = in.range(1, 3);
  for (std::size_t i = 0; i < labels; ++i)
    name.labels.push_back(in.str(in.range(1, 12), kToken));
  return name;
}

json::Value fuzz_json(FuzzInput& in) {
  json::Object root;
  const std::size_t members = in.range(1, 3);
  for (std::size_t i = 0; i < members; ++i) {
    const std::string key = in.str(in.range(1, 8), kToken);
    switch (in.u8() % 4) {
      case 0: root.emplace(key, json::Value(static_cast<int>(in.u16()))); break;
      case 1: root.emplace(key, json::Value(in.boolean())); break;
      case 2: root.emplace(key, json::Value(in.str(in.range(0, 12), kToken))); break;
      default: {
        json::Object inner;
        inner.emplace(in.str(in.range(1, 6), kToken),
                      json::Value(static_cast<int>(in.u8())));
        root.emplace(key, json::Value(std::move(inner)));
      }
    }
  }
  return json::Value(std::move(root));
}

}  // namespace

int fuzz_roundtrip(BytesView data) {
  FuzzInput in(data);
  const Ipv4Address src4(192, 168, 10, static_cast<std::uint8_t>(in.u8() | 1));
  const Ipv4Address dst4(192, 168, 10, static_cast<std::uint8_t>(in.u8() | 2));
  Ipv6Address src6, dst6;
  {
    std::array<std::uint8_t, 16> b{};
    b[0] = 0xfe;
    b[1] = 0x80;
    b[15] = in.u8();
    src6 = Ipv6Address(b);
    b[15] = static_cast<std::uint8_t>(b[15] + 1);
    dst6 = Ipv6Address(b);
  }

  switch (in.u8() % 21) {
    case 0: {
      EthernetFrame f;
      f.dst = in.mac();
      f.src = in.mac();
      f.ethertype = in.u16();
      f.payload = in.bytes(in.range(0, 64));
      roundtrip("ethernet", f, encode_ethernet, decode_ethernet, true);
      break;
    }
    case 1: {
      ArpPacket a;
      a.op = in.boolean() ? ArpOp::kRequest : ArpOp::kReply;
      a.sender_mac = in.mac();
      a.sender_ip = in.ipv4();
      a.target_mac = in.mac();
      a.target_ip = in.ipv4();
      roundtrip("arp", a, encode_arp, decode_arp, true);
      break;
    }
    case 2: {
      LlcXidFrame f;
      f.dsap = in.u8();
      f.ssap = in.u8();
      f.is_xid = in.boolean();
      f.info = in.bytes(in.range(0, 48));
      roundtrip("llc", f, encode_llc_xid, decode_llc, true);
      break;
    }
    case 3: {
      EapolFrame f;
      f.version = in.u8();
      f.type = static_cast<EapolType>(in.u8() % 4);
      f.body = in.bytes(in.range(0, 48));
      roundtrip("eapol", f, encode_eapol, decode_eapol, true);
      break;
    }
    case 4: {
      Ipv4Packet p;
      p.src = in.ipv4();
      p.dst = in.ipv4();
      p.protocol = in.u8();
      p.ttl = in.u8();
      p.identification = in.u16();
      p.payload = in.bytes(in.range(0, 96));
      roundtrip("ipv4", p, encode_ipv4, decode_ipv4, true);
      break;
    }
    case 5: {
      Ipv6Packet p;
      p.src = in.ipv6();
      p.dst = in.ipv6();
      p.next_header = in.u8();
      p.hop_limit = in.u8();
      p.payload = in.bytes(in.range(0, 96));
      roundtrip("ipv6", p, encode_ipv6, decode_ipv6, true);
      break;
    }
    case 6: {
      UdpDatagram u;
      u.src_port = port(in.u16());
      u.dst_port = port(in.u16());
      u.payload = in.bytes(in.range(0, 96));
      roundtrip(
          "udp", u,
          [&](const UdpDatagram& m) { return encode_udp_v4(m, src4, dst4); },
          decode_udp, true);
      break;
    }
    case 7: {
      TcpSegment t;
      t.src_port = port(in.u16());
      t.dst_port = port(in.u16());
      t.seq = in.u32();
      t.ack = in.u32();
      t.flags = TcpFlags::from_byte(in.u8() & 0x1f);
      t.window = in.u16();
      t.payload = in.bytes(in.range(0, 96));
      roundtrip(
          "tcp", t,
          [&](const TcpSegment& m) { return encode_tcp_v4(m, src4, dst4); },
          decode_tcp, true);
      break;
    }
    case 8: {
      IcmpMessage m;
      m.type = in.u8();
      m.code = in.u8();
      m.body = in.bytes(in.range(0, 48));
      roundtrip("icmp", m, encode_icmp, decode_icmp, true);
      break;
    }
    case 9: {
      static constexpr Icmpv6Type kTypes[] = {
          Icmpv6Type::kEchoRequest,          Icmpv6Type::kEchoReply,
          Icmpv6Type::kRouterSolicitation,   Icmpv6Type::kRouterAdvertisement,
          Icmpv6Type::kNeighborSolicitation, Icmpv6Type::kNeighborAdvertisement,
      };
      Icmpv6Message m;
      m.type = kTypes[in.u8() % 6];
      m.code = in.u8();
      const bool ndp = m.type == Icmpv6Type::kNeighborSolicitation ||
                       m.type == Icmpv6Type::kNeighborAdvertisement;
      if (ndp) {
        m.target = in.ipv6();
        if (in.boolean()) m.link_layer_option = in.mac();
      } else {
        m.extra = in.bytes(in.range(0, 48));
      }
      roundtrip(
          "icmpv6", m,
          [&](const Icmpv6Message& x) { return encode_icmpv6(x, src6, dst6); },
          decode_icmpv6, true);
      break;
    }
    case 10: {
      IgmpMessage m;
      m.type = in.u8();
      m.group = in.ipv4();
      roundtrip("igmp", m, encode_igmp, decode_igmp, true);
      break;
    }
    case 11: {
      DnsMessage m;
      m.id = in.u16();
      m.is_response = in.boolean();
      m.authoritative = in.boolean();
      const std::size_t questions = in.range(0, 2);
      for (std::size_t i = 0; i < questions; ++i) {
        DnsQuestion q;
        q.name = fuzz_dns_name(in);
        static constexpr DnsType kTypes[] = {DnsType::kA,   DnsType::kPtr,
                                             DnsType::kTxt, DnsType::kAaaa,
                                             DnsType::kSrv, DnsType::kAny};
        q.type = kTypes[in.u8() % 6];
        q.unicast_response = in.boolean();
        m.questions.push_back(std::move(q));
      }
      const std::size_t answers = in.range(0, 3);
      for (std::size_t i = 0; i < answers; ++i) {
        switch (in.u8() % 5) {
          case 0:
            m.answers.push_back(DnsRecord::make_a(fuzz_dns_name(in), in.ipv4()));
            break;
          case 1:
            m.answers.push_back(
                DnsRecord::make_aaaa(fuzz_dns_name(in), in.ipv6()));
            break;
          case 2:
            m.answers.push_back(
                DnsRecord::make_ptr(fuzz_dns_name(in), fuzz_dns_name(in)));
            break;
          case 3: {
            SrvData srv;
            srv.priority = in.u16();
            srv.weight = in.u16();
            srv.port = in.u16();
            srv.target = fuzz_dns_name(in);
            m.answers.push_back(DnsRecord::make_srv(fuzz_dns_name(in), srv));
            break;
          }
          default: {
            std::vector<std::string> txt;
            const std::size_t n = in.range(1, 3);
            for (std::size_t j = 0; j < n; ++j)
              txt.push_back(in.str(in.range(1, 16), kToken));
            m.answers.push_back(DnsRecord::make_txt(fuzz_dns_name(in), txt));
          }
        }
      }
      // decode re-encodes compressed PTR/SRV targets in plain form, so the
      // wire form normalizes after one cycle: idempotence, not strict.
      roundtrip("dns", m, encode_dns, decode_dns, false);
      break;
    }
    case 12: {
      DhcpMessage m;
      m.is_request = in.boolean();
      m.xid = in.u32();
      m.ciaddr = in.ipv4();
      m.yiaddr = in.ipv4();
      m.siaddr = in.ipv4();
      m.giaddr = in.ipv4();
      m.client_mac = in.mac();
      m.set_message_type(static_cast<DhcpMessageType>(in.range(1, 8)));
      const std::size_t options = in.range(0, 4);
      for (std::size_t i = 0; i < options; ++i) {
        // Codes 0 (pad) and 255 (end) are framing, not options.
        const auto code = static_cast<std::uint8_t>(in.range(1, 254));
        m.options.push_back({code, in.bytes(in.range(0, 48))});
      }
      roundtrip("dhcp", m, encode_dhcp, decode_dhcp, true);
      break;
    }
    case 13: {
      SsdpMessage m;
      static constexpr SsdpKind kKinds[] = {SsdpKind::kMSearch,
                                            SsdpKind::kNotify,
                                            SsdpKind::kResponse};
      m.kind = kKinds[in.u8() % 3];
      m.search_target = in.str(in.range(1, 24), kToken);
      m.usn = in.str(in.range(0, 24), kToken);
      m.server = in.str(in.range(0, 24), kToken);
      m.location = in.str(in.range(0, 24), kToken);
      m.nts = in.boolean() ? "ssdp:alive" : "ssdp:byebye";
      m.mx = static_cast<int>(in.range(1, 120));
      roundtrip("ssdp", m, encode_ssdp, decode_ssdp, false);
      break;
    }
    case 14: {
      if (in.boolean()) {
        HttpRequest req;
        static constexpr const char* kMethods[] = {"GET", "POST", "PUT",
                                                   "HEAD"};
        req.method = kMethods[in.u8() % 4];
        req.target = "/" + in.str(in.range(0, 16), kToken);
        const std::size_t headers = in.range(0, 3);
        for (std::size_t i = 0; i < headers; ++i)
          req.headers.add(in.str(in.range(1, 10), kToken),
                          in.str(in.range(1, 16), kToken));
        req.body = in.bytes(in.range(0, 48));
        roundtrip("http-request", req, encode_http_request,
                  decode_http_request, false);
      } else {
        HttpResponse res;
        res.status = static_cast<int>(in.range(100, 599));
        res.reason = in.str(in.range(1, 12), kToken);
        const std::size_t headers = in.range(0, 3);
        for (std::size_t i = 0; i < headers; ++i)
          res.headers.add(in.str(in.range(1, 10), kToken),
                          in.str(in.range(1, 16), kToken));
        res.body = in.bytes(in.range(0, 48));
        roundtrip("http-response", res, encode_http_response,
                  decode_http_response, false);
      }
      break;
    }
    case 15: {
      static constexpr TlsVersion kVersions[] = {
          TlsVersion::kTls10, TlsVersion::kTls11, TlsVersion::kTls12,
          TlsVersion::kTls13};
      switch (in.u8() % 3) {
        case 0: {
          TlsClientHello hello;
          hello.version = kVersions[in.u8() % 4];
          hello.random = in.bytes(32);
          hello.random.resize(32, 0);
          const std::size_t suites = in.range(1, 8);
          for (std::size_t i = 0; i < suites; ++i)
            hello.cipher_suites.push_back(in.u16());
          hello.sni = in.str(in.range(0, 16), kToken);
          roundtrip(
              "tls-client-hello", hello, encode_client_hello,
              [](BytesView raw) -> std::optional<TlsClientHello> {
                const auto record = decode_tls_record(raw);
                if (!record) return std::nullopt;
                return decode_client_hello(*record);
              },
              false);
          break;
        }
        case 1: {
          TlsServerHello hello;
          hello.version = kVersions[in.u8() % 4];
          hello.random = in.bytes(32);
          hello.random.resize(32, 0);
          hello.cipher_suite = in.u16();
          roundtrip(
              "tls-server-hello", hello, encode_server_hello,
              [](BytesView raw) -> std::optional<TlsServerHello> {
                const auto record = decode_tls_record(raw);
                if (!record) return std::nullopt;
                return decode_server_hello(*record);
              },
              false);
          break;
        }
        default: {
          CertificateInfo cert;
          cert.subject_cn = in.str(in.range(1, 24), kToken);
          cert.issuer_cn = in.str(in.range(1, 24), kToken);
          cert.validity_days = in.u16();
          cert.key_bits = in.u16();
          const TlsVersion version = kVersions[in.u8() % 4];
          roundtrip(
              "tls-certificate", cert,
              [&](const CertificateInfo& c) {
                return encode_certificate(c, version, /*encrypted=*/false);
              },
              [](BytesView raw) -> std::optional<CertificateInfo> {
                const auto record = decode_tls_record(raw);
                if (!record) return std::nullopt;
                return decode_certificate(*record);
              },
              false);
        }
      }
      break;
    }
    case 16: {
      CoapMessage m;
      m.type = static_cast<CoapType>(in.u8() % 4);
      m.code = in.u8();
      m.message_id = in.u16();
      m.token = in.bytes(in.range(0, 8));
      std::uint16_t number = 0;
      const std::size_t options = in.range(0, 4);
      for (std::size_t i = 0; i < options; ++i) {
        number = static_cast<std::uint16_t>(number + in.range(0, 40));
        m.options.push_back({number, in.bytes(in.range(0, 24))});
      }
      m.payload = in.bytes(in.range(0, 32));
      roundtrip("coap", m, encode_coap, decode_coap, false);
      break;
    }
    case 17: {
      Dhcpv6Message m;
      m.type = static_cast<Dhcpv6Type>(in.range(1, 36));
      m.transaction_id = in.u32() & 0xffffff;
      if (in.boolean()) m.set_client_duid_ll(in.mac());
      if (in.boolean()) m.set_fqdn(in.str(in.range(1, 24), kToken));
      const std::size_t options = in.range(0, 3);
      for (std::size_t i = 0; i < options; ++i)
        m.options.push_back({in.u16(), in.bytes(in.range(0, 32))});
      roundtrip("dhcpv6", m, encode_dhcpv6, decode_dhcpv6, true);
      break;
    }
    case 18: {
      if (in.boolean()) {
        TuyaFrame f;
        f.seq = in.u32();
        f.command = in.u32();
        f.payload = in.bytes(in.range(0, 48));
        roundtrip("tuya-frame", f, encode_tuya_frame, decode_tuya_frame, true);
      } else {
        const json::Value command = fuzz_json(in);
        if (in.boolean()) {
          roundtrip("tplink-udp", command, encode_tplink_udp,
                    decode_tplink_udp, true);
        } else {
          roundtrip("tplink-tcp", command, encode_tplink_tcp,
                    decode_tplink_tcp, true);
        }
      }
      break;
    }
    case 19: {
      switch (in.u8() % 3) {
        case 0: {
          MatterMessage m;
          m.session_id = in.u16();
          m.message_counter = in.u32();
          if (in.boolean()) m.source_node = in.u64();
          if (in.boolean()) m.destination_node = in.u64();
          m.payload = in.bytes(in.range(0, 48));
          roundtrip("matter", m, encode_matter, decode_matter, true);
          break;
        }
        case 1: {
          RtpPacket p;
          p.payload_type = in.u8() & 0x7f;
          p.sequence = in.u16();
          p.timestamp = in.u32();
          p.ssrc = in.u32();
          p.payload = in.bytes(in.range(0, 48));
          roundtrip("rtp", p, encode_rtp, decode_rtp, true);
          break;
        }
        default: {
          StunMessage m;
          m.type = in.u16() & 0x3fff;
          m.transaction_id = in.bytes(12);
          m.attributes = in.bytes(in.range(0, 48));
          roundtrip("stun", m, encode_stun, decode_stun, true);
        }
      }
      break;
    }
    default: {
      NetbiosPacket p;
      p.transaction_id = in.u16();
      static constexpr NetbiosOp kOps[] = {NetbiosOp::kNameQuery,
                                           NetbiosOp::kNodeStatusQuery,
                                           NetbiosOp::kNodeStatusResponse};
      p.op = kOps[in.u8() % 3];
      p.name = in.boolean() ? "*" : in.str(in.range(1, 8), kUpper);
      if (p.op == NetbiosOp::kNodeStatusResponse) {
        const std::size_t names = in.range(0, 3);
        for (std::size_t i = 0; i < names; ++i)
          p.owned_names.push_back(in.str(in.range(1, 8), kUpper));
      }
      roundtrip("netbios", p, encode_netbios, decode_netbios, false);
      break;
    }
  }
  return 0;
}

}  // namespace roomnet::fuzz
