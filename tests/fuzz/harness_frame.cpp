// Differential fuzz of the zero-copy frame decode: on every input,
// decode_frame_view and the owning decode_frame must agree on accept/reject
// and, when they accept, field-for-field on every layer; materialize/
// as_view must invert each other; and rebase into a copied buffer must
// produce byte-identical slices that point into the new buffer. These are
// exactly the contracts DESIGN.md §10 states and the capture hot path
// relies on.
#include <algorithm>

#include "harness.hpp"
#include "netcore/packet_view.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "frame";

bool same_bytes(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
bool same_bytes(const Bytes& a, BytesView b) {
  return same_bytes(BytesView(a), b);
}

bool same_mac(const MacAddress& a, const MacAddress& b) {
  return a.octets() == b.octets();
}
bool same_v6(const Ipv6Address& a, const Ipv6Address& b) {
  return a.bytes() == b.bytes();
}

void check_equivalent(const Packet& p, const PacketView& v) {
  ROOMNET_FUZZ_CHECK(same_mac(p.eth.dst, v.eth.dst), kName, "eth.dst");
  ROOMNET_FUZZ_CHECK(same_mac(p.eth.src, v.eth.src), kName, "eth.src");
  ROOMNET_FUZZ_CHECK(p.eth.ethertype == v.eth.ethertype, kName,
                     "eth.ethertype");
  ROOMNET_FUZZ_CHECK(same_bytes(p.eth.payload, v.eth.payload), kName,
                     "eth.payload");

  ROOMNET_FUZZ_CHECK(p.arp.has_value() == v.arp.has_value(), kName,
                     "arp presence");
  if (p.arp) {
    ROOMNET_FUZZ_CHECK(p.arp->op == v.arp->op &&
                           same_mac(p.arp->sender_mac, v.arp->sender_mac) &&
                           p.arp->sender_ip == v.arp->sender_ip &&
                           same_mac(p.arp->target_mac, v.arp->target_mac) &&
                           p.arp->target_ip == v.arp->target_ip,
                       kName, "arp fields");
  }

  ROOMNET_FUZZ_CHECK(p.llc.has_value() == v.llc.has_value(), kName,
                     "llc presence");
  if (p.llc) {
    ROOMNET_FUZZ_CHECK(p.llc->dsap == v.llc->dsap &&
                           p.llc->ssap == v.llc->ssap &&
                           p.llc->is_xid == v.llc->is_xid &&
                           same_bytes(p.llc->info, v.llc->info),
                       kName, "llc fields");
  }

  ROOMNET_FUZZ_CHECK(p.eapol.has_value() == v.eapol.has_value(), kName,
                     "eapol presence");
  if (p.eapol) {
    ROOMNET_FUZZ_CHECK(p.eapol->version == v.eapol->version &&
                           p.eapol->type == v.eapol->type &&
                           same_bytes(p.eapol->body, v.eapol->body),
                       kName, "eapol fields");
  }

  ROOMNET_FUZZ_CHECK(p.ipv4.has_value() == v.ipv4.has_value(), kName,
                     "ipv4 presence");
  if (p.ipv4) {
    ROOMNET_FUZZ_CHECK(p.ipv4->src == v.ipv4->src &&
                           p.ipv4->dst == v.ipv4->dst &&
                           p.ipv4->protocol == v.ipv4->protocol &&
                           p.ipv4->ttl == v.ipv4->ttl &&
                           p.ipv4->identification == v.ipv4->identification &&
                           same_bytes(p.ipv4->payload, v.ipv4->payload),
                       kName, "ipv4 fields");
  }

  ROOMNET_FUZZ_CHECK(p.ipv6.has_value() == v.ipv6.has_value(), kName,
                     "ipv6 presence");
  if (p.ipv6) {
    ROOMNET_FUZZ_CHECK(same_v6(p.ipv6->src, v.ipv6->src) &&
                           same_v6(p.ipv6->dst, v.ipv6->dst) &&
                           p.ipv6->next_header == v.ipv6->next_header &&
                           p.ipv6->hop_limit == v.ipv6->hop_limit &&
                           same_bytes(p.ipv6->payload, v.ipv6->payload),
                       kName, "ipv6 fields");
  }

  ROOMNET_FUZZ_CHECK(p.udp.has_value() == v.udp.has_value(), kName,
                     "udp presence");
  if (p.udp) {
    ROOMNET_FUZZ_CHECK(p.udp->src_port == v.udp->src_port &&
                           p.udp->dst_port == v.udp->dst_port &&
                           same_bytes(p.udp->payload, v.udp->payload),
                       kName, "udp fields");
  }

  ROOMNET_FUZZ_CHECK(p.tcp.has_value() == v.tcp.has_value(), kName,
                     "tcp presence");
  if (p.tcp) {
    ROOMNET_FUZZ_CHECK(
        p.tcp->src_port == v.tcp->src_port &&
            p.tcp->dst_port == v.tcp->dst_port && p.tcp->seq == v.tcp->seq &&
            p.tcp->ack == v.tcp->ack &&
            p.tcp->flags.to_byte() == v.tcp->flags.to_byte() &&
            p.tcp->window == v.tcp->window &&
            same_bytes(p.tcp->payload, v.tcp->payload),
        kName, "tcp fields");
  }

  ROOMNET_FUZZ_CHECK(p.icmp.has_value() == v.icmp.has_value(), kName,
                     "icmp presence");
  if (p.icmp) {
    ROOMNET_FUZZ_CHECK(p.icmp->type == v.icmp->type &&
                           p.icmp->code == v.icmp->code &&
                           same_bytes(p.icmp->body, v.icmp->body),
                       kName, "icmp fields");
  }

  ROOMNET_FUZZ_CHECK(p.icmpv6.has_value() == v.icmpv6.has_value(), kName,
                     "icmpv6 presence");
  if (p.icmpv6) {
    ROOMNET_FUZZ_CHECK(
        p.icmpv6->type == v.icmpv6->type && p.icmpv6->code == v.icmpv6->code &&
            p.icmpv6->target.has_value() == v.icmpv6->target.has_value() &&
            (!p.icmpv6->target || same_v6(*p.icmpv6->target, *v.icmpv6->target)) &&
            p.icmpv6->link_layer_option.has_value() ==
                v.icmpv6->link_layer_option.has_value() &&
            (!p.icmpv6->link_layer_option ||
             same_mac(*p.icmpv6->link_layer_option,
                      *v.icmpv6->link_layer_option)) &&
            same_bytes(p.icmpv6->extra, v.icmpv6->extra),
        kName, "icmpv6 fields");
  }

  ROOMNET_FUZZ_CHECK(p.igmp.has_value() == v.igmp.has_value(), kName,
                     "igmp presence");
  if (p.igmp) {
    ROOMNET_FUZZ_CHECK(p.igmp->type == v.igmp->type &&
                           p.igmp->group == v.igmp->group,
                       kName, "igmp fields");
  }

  // Derived accessors must agree too (they gate the classifiers).
  ROOMNET_FUZZ_CHECK(p.has_ip() == v.has_ip(), kName, "has_ip");
  ROOMNET_FUZZ_CHECK(p.has_transport() == v.has_transport(), kName,
                     "has_transport");
  ROOMNET_FUZZ_CHECK(same_bytes(p.app_payload(), v.app_payload()), kName,
                     "app_payload");
  ROOMNET_FUZZ_CHECK(wire_proto(p) == wire_proto(v), kName, "wire_proto");
}

bool points_into(BytesView slice, BytesView buffer) {
  if (slice.empty()) return true;
  return slice.data() >= buffer.data() &&
         slice.data() + slice.size() <= buffer.data() + buffer.size();
}

}  // namespace

int fuzz_frame(BytesView data) {
  if (data.size() > 65536) return 0;

  const auto view = decode_frame_view(data);
  const auto owned = decode_frame(data);
  ROOMNET_FUZZ_CHECK(view.has_value() == owned.has_value(), kName,
                     "view/owning accept disagreement");
  if (!view) return 0;

  check_equivalent(*owned, *view);

  // materialize ∘ as_view must be the identity on decoded packets.
  const Packet rematerialized = materialize(as_view(*owned));
  check_equivalent(rematerialized, *view);

  // rebase into an identical copy: same bytes, slices inside the new buffer.
  const Bytes copy(data.begin(), data.end());
  const PacketView rebased = rebase(*view, data, BytesView(copy));
  check_equivalent(*owned, rebased);
  ROOMNET_FUZZ_CHECK(points_into(rebased.eth.payload, BytesView(copy)), kName,
                     "rebased eth.payload escapes the target buffer");
  if (rebased.udp)
    ROOMNET_FUZZ_CHECK(points_into(rebased.udp->payload, BytesView(copy)),
                       kName, "rebased udp.payload escapes the target buffer");
  if (rebased.tcp)
    ROOMNET_FUZZ_CHECK(points_into(rebased.tcp->payload, BytesView(copy)),
                       kName, "rebased tcp.payload escapes the target buffer");
  return 0;
}

}  // namespace roomnet::fuzz
