// FuzzInput: splits one flat fuzzer input into typed values, in the style
// of LLVM's FuzzedDataProvider. Exhausted input yields zeros/empties rather
// than failing, so every byte string maps to *some* structured message —
// the property that lets the round-trip and structure-aware harnesses
// explore the message space instead of rejecting most inputs at the door.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "netcore/address.hpp"
#include "netcore/bytes.hpp"

namespace roomnet::fuzz {

class FuzzInput {
 public:
  explicit FuzzInput(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return pos_ < data_.size() ? data_[pos_++] : 0; }
  std::uint16_t u16() {
    return static_cast<std::uint16_t>(static_cast<std::uint16_t>(u8()) << 8 |
                                      u8());
  }
  std::uint32_t u32() {
    return static_cast<std::uint32_t>(u16()) << 16 | u16();
  }
  std::uint64_t u64() { return static_cast<std::uint64_t>(u32()) << 32 | u32(); }
  bool boolean() { return (u8() & 1) != 0; }

  /// Uniform-ish value in [0, bound). bound == 0 returns 0.
  std::size_t below(std::size_t bound) {
    return bound == 0 ? 0 : u32() % bound;
  }
  /// Value in [lo, hi] inclusive.
  std::size_t range(std::size_t lo, std::size_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Up to `n` bytes (fewer when the input runs dry).
  Bytes bytes(std::size_t n) {
    const std::size_t take = n < remaining() ? n : remaining();
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + take));
    pos_ += take;
    return out;
  }

  /// ASCII string of up to `n` chars drawn from `charset`.
  std::string str(std::size_t n, std::string_view charset) {
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      out += charset[u8() % charset.size()];
    return out;
  }

  MacAddress mac() {
    std::array<std::uint8_t, 6> o{};
    for (auto& b : o) b = u8();
    return MacAddress(o);
  }
  Ipv4Address ipv4() { return Ipv4Address(u32()); }
  Ipv6Address ipv6() {
    std::array<std::uint8_t, 16> b{};
    for (auto& x : b) x = u8();
    return Ipv6Address(b);
  }

  /// Everything not yet consumed.
  BytesView rest() {
    const BytesView out = data_.subspan(pos_);
    pos_ = data_.size();
    return out;
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace roomnet::fuzz
