#include <cstdio>
#include <cstdlib>

#include "harness.hpp"

namespace roomnet::fuzz {

namespace {
constexpr HarnessInfo kHarnesses[] = {
    {"frame", fuzz_frame},   {"roundtrip", fuzz_roundtrip},
    {"dns", fuzz_dns},       {"dhcp", fuzz_dhcp},
    {"ssdp", fuzz_ssdp},     {"tls", fuzz_tls},
    {"payload", fuzz_payload}, {"stream", fuzz_stream},
};
}  // namespace

const HarnessInfo* harness_registry(std::size_t* count) {
  *count = sizeof(kHarnesses) / sizeof(kHarnesses[0]);
  return kHarnesses;
}

const HarnessInfo* find_harness(std::string_view name) {
  for (const auto& h : kHarnesses)
    if (h.name == name) return &h;
  return nullptr;
}

void fuzz_fail(const char* harness, const char* message) {
  std::fprintf(stderr, "FUZZ INVARIANT VIOLATED [%s]: %s\n", harness, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace roomnet::fuzz
