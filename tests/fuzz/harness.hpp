// The fuzz harness inventory. Each entry point takes one arbitrary byte
// string and either returns 0 or dies (abort on a violated invariant,
// sanitizer report on UB) — the libFuzzer contract. The same entry points
// back three consumers:
//
//   * the fuzz_<name> executables built under -DROOMNET_FUZZ=ON (libFuzzer
//     when the compiler is clang, the standalone driver otherwise),
//   * the FuzzRegressions gtest, which replays every committed corpus file
//     through every harness in plain/ASan/TSan builds,
//   * scripts/check.sh --fuzz, which smokes each executable for a fixed
//     budget.
//
// Keep entries total: no input may hang, allocate unboundedly, or recurse
// past the stack. DESIGN.md §13 documents the per-harness invariants.
#pragma once

#include <cstddef>
#include <string_view>

#include "netcore/bytes.hpp"

namespace roomnet::fuzz {

// -- harness entry points (one per family member) ---------------------------

/// Differential: decode_frame_view vs decode_frame vs materialize/as_view/
/// rebase must agree field-for-field on every input.
int fuzz_frame(BytesView data);
/// Round-trip: input-driven construction of every layer + payload message;
/// encode must decode, and re-encoding the decode must be a fixpoint.
int fuzz_roundtrip(BytesView data);
/// Structure-aware DNS/mDNS: raw decode, decode-encode idempotence, and
/// field-granularity mutations of a well-formed message (counts, label
/// lengths, compression pointers, rdlength).
int fuzz_dns(BytesView data);
/// Structure-aware DHCP: option TLV lengths, magic cookie, truncation.
int fuzz_dhcp(BytesView data);
/// Structure-aware SSDP/HTTP/UPnP-XML: header splicing and truncation.
int fuzz_ssdp(BytesView data);
/// Structure-aware TLS: record/handshake 16- and 24-bit lengths, cipher
/// suite counts, extension lengths, certificate fields.
int fuzz_tls(BytesView data);
/// Remaining payload decoders (CoAP, Tuya, TP-Link/JSON, NetBIOS, Matter,
/// RTP/STUN, DHCPv6): raw decode + idempotence.
int fuzz_payload(BytesView data);
/// FlowCache/StreamAnalyzer: replays input-framed records through the
/// streaming fold and asserts the cache's bound invariants.
int fuzz_stream(BytesView data);

// -- registry ---------------------------------------------------------------

struct HarnessInfo {
  std::string_view name;  // corpus subdirectory + fuzz_<name> target name
  int (*entry)(BytesView);
};

/// Every harness above, in build order. Drives the regression-replay gtest
/// and the standalone driver's --list mode.
const HarnessInfo* harness_registry(std::size_t* count);

/// nullptr when `name` is unknown.
const HarnessInfo* find_harness(std::string_view name);

// -- shared plumbing --------------------------------------------------------

/// Abort with a message on a violated harness invariant (never use assert:
/// NDEBUG builds must keep the checks).
[[noreturn]] void fuzz_fail(const char* harness, const char* message);

#define ROOMNET_FUZZ_CHECK(cond, harness, message) \
  do {                                             \
    if (!(cond)) ::roomnet::fuzz::fuzz_fail(harness, message); \
  } while (0)

}  // namespace roomnet::fuzz
