// Structure-aware TLS fuzz. Phase A: the raw input as a record stream
// through decode_tls_record/decode_tls_records and all three handshake
// decoders. Phase B: encode a well-formed ClientHello / ServerHello /
// Certificate flight and mutate exactly the fields that frame lengths on
// the wire — the record's 16-bit length, the handshake's 24-bit length,
// cipher-suite and extension length prefixes, version bytes — plus
// truncation, then require total decodes.
#include "fuzz_input.hpp"
#include "fuzz_mutate.hpp"
#include "harness.hpp"
#include "proto/tls.hpp"

namespace roomnet::fuzz {

namespace {

constexpr char kName[] = "tls";
constexpr std::string_view kCnChars =
    "abcdefghijklmnopqrstuvwxyz0123456789.-";

// Record header: type(1) version(2) length(2); handshake header follows:
// type(1) length(3).
constexpr std::size_t kRecordLenOffset = 3;
constexpr std::size_t kHandshakeLenOffset = 6;

void try_all_decoders(BytesView wire) {
  if (const auto record = decode_tls_record(wire)) {
    (void)decode_client_hello(*record);
    (void)decode_server_hello(*record);
    (void)decode_certificate(*record);
  }
  const auto records = decode_tls_records(wire);
  for (const auto& record : records) {
    (void)decode_client_hello(record);
    (void)decode_server_hello(record);
    (void)decode_certificate(record);
  }
  (void)looks_like_tls(wire);
}

Bytes template_flight(FuzzInput& in) {
  static constexpr TlsVersion kVersions[] = {
      TlsVersion::kTls10, TlsVersion::kTls11, TlsVersion::kTls12,
      TlsVersion::kTls13};
  const TlsVersion version = kVersions[in.u8() % 4];
  switch (in.u8() % 3) {
    case 0: {
      TlsClientHello hello;
      hello.version = version;
      hello.random = in.bytes(32);
      const std::size_t suites = in.range(1, 6);
      for (std::size_t i = 0; i < suites; ++i)
        hello.cipher_suites.push_back(in.u16());
      if (in.boolean()) hello.sni = in.str(in.range(1, 16), kCnChars);
      return encode_client_hello(hello);
    }
    case 1: {
      TlsServerHello hello;
      hello.version = version;
      hello.random = in.bytes(32);
      hello.cipher_suite = in.u16();
      return encode_server_hello(hello);
    }
    default: {
      CertificateInfo cert;
      cert.subject_cn = in.str(in.range(1, 20), kCnChars);
      cert.issuer_cn = in.boolean() ? cert.subject_cn  // self-signed
                                    : in.str(in.range(1, 20), kCnChars);
      cert.validity_days = in.u16();
      cert.key_bits = in.u16();
      return encode_certificate(cert, version, in.boolean());
    }
  }
}

}  // namespace

int fuzz_tls(BytesView data) {
  if (data.size() > 65536) return 0;

  // Phase A: raw input as a record stream.
  try_all_decoders(data);

  // Phase B: length-field mutations of a well-formed flight.
  FuzzInput in(data);
  Bytes wire = template_flight(in);
  const std::size_t mutations = in.range(1, 8);
  for (std::size_t i = 0; i < mutations && !wire.empty(); ++i) {
    switch (in.u8() % 7) {
      case 0:  // record length: longer/shorter than the actual body
        put_u16(wire, kRecordLenOffset, interesting_u16(in));
        break;
      case 1:  // handshake 24-bit length
        put_u24(wire, kHandshakeLenOffset,
                in.boolean() ? 0xffffffu : in.u32() & 0xffffff);
        break;
      case 2:  // version bytes (record and/or legacy handshake version)
        if (wire.size() > 2) {
          wire[1] = in.boolean() ? 0x03 : in.u8();
          wire[2] = in.u8();
        }
        break;
      case 3: {  // cipher-suite count / session-id length region
        const std::size_t at = 43 + in.below(4);
        if (at < wire.size()) wire[at] = in.boolean() ? 0xff : in.u8();
        break;
      }
      case 4: {  // extension-length-ish u16 anywhere past the headers
        if (wire.size() > 11) put_u16(wire, 9 + in.below(wire.size() - 9),
                                      interesting_u16(in));
        break;
      }
      case 5:
        truncate(wire, in);
        break;
      default:
        wire[in.below(wire.size())] = in.u8();
        break;
    }
  }
  try_all_decoders(wire);
  return 0;
}

}  // namespace roomnet::fuzz
