// Property-based and parameterized tests: invariants that must hold for
// every seed, size, or parameter value — codec round-trips, decoder safety
// on arbitrary bytes, checksum self-verification, classifier totality,
// periodicity detection sweeps, and dataset-generator invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "capture/flow.hpp"
#include "classify/classifier.hpp"
#include "classify/periodicity.hpp"
#include "crowd/entropy.hpp"
#include "crowd/inspector.hpp"
#include "netcore/sha256.hpp"
#include "netcore/checksum.hpp"
#include "netcore/packet.hpp"
#include "netcore/pcap.hpp"
#include "netcore/rng.hpp"
#include "proto/coap.hpp"
#include "proto/dhcp.hpp"
#include "proto/dns.hpp"
#include "proto/http.hpp"
#include "proto/json.hpp"
#include "proto/media.hpp"
#include "proto/netbios.hpp"
#include "proto/ssdp.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"

namespace roomnet {
namespace {

// ---------------------------------------------------------------------------
// Decoder safety: every parser must return cleanly on arbitrary bytes.
// ---------------------------------------------------------------------------

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, NoDecoderCrashesOnRandomBytes) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes blob = rng.bytes(rng.below(200));
    const BytesView view(blob);
    // Each call must return nullopt or a valid object — never crash/UB.
    decode_frame(view);
    decode_ethernet(view);
    decode_arp(view);
    decode_ipv4(view);
    decode_ipv6(view);
    decode_udp(view);
    decode_tcp(view);
    decode_icmp(view);
    decode_icmpv6(view);
    decode_igmp(view);
    decode_eapol(view);
    decode_llc(view);
    decode_dhcp(view);
    decode_dns(view);
    decode_ssdp(view);
    decode_http_request(view);
    decode_http_response(view);
    decode_tplink_udp(view);
    decode_tplink_tcp(view);
    decode_tuya_frame(view);
    decode_coap(view);
    decode_netbios(view);
    decode_tls_record(view);
    decode_tls_records(view);
    decode_rtp(view);
    decode_stun(view);
    decode_pcap(view);
    json::parse(string_of(view));
  }
}

TEST_P(DecoderFuzz, TruncationsOfValidMessagesAreSafe) {
  Rng rng(GetParam());
  // Build one valid frame, then decode every prefix of it.
  DnsMessage msg;
  msg.is_response = true;
  msg.answers.push_back(DnsRecord::make_ptr(
      DnsName::from_string("_hue._tcp.local"),
      DnsName::from_string("X._hue._tcp.local")));
  UdpDatagram udp;
  udp.src_port = port(5353);
  udp.dst_port = port(5353);
  udp.payload = encode_dns(msg);
  const Ipv4Address src(192, 168, 10, 2);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = kMdnsGroupV4;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.payload = encode_udp_v4(udp, src, kMdnsGroupV4);
  EthernetFrame eth;
  eth.src = MacAddress::from_u64(GetParam());
  eth.dst = MacAddress::kBroadcast;
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);
  const Bytes frame = encode_ethernet(eth);
  for (std::size_t n = 0; n <= frame.size(); ++n)
    decode_frame(BytesView(frame).first(n));
  // And random single-byte corruptions.
  for (int round = 0; round < 100; ++round) {
    Bytes corrupted = frame;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    decode_frame(BytesView(corrupted));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Round-trip properties over random inputs.
// ---------------------------------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
  std::string random_label() {
    static const char* kWords[] = {"hub", "cam", "tv", "plug", "echo", "nest"};
    return std::string(kWords[rng_.below(6)]) + std::to_string(rng_.below(1000));
  }
};

TEST_P(RoundTrip, DnsMessages) {
  for (int round = 0; round < 30; ++round) {
    DnsMessage msg;
    msg.is_response = rng_.chance(0.5);
    const int questions = static_cast<int>(rng_.below(4));
    for (int q = 0; q < questions; ++q) {
      msg.questions.push_back({DnsName::from_string("_" + random_label() +
                                                    "._tcp.local"),
                               DnsType::kPtr, rng_.chance(0.3)});
    }
    const int answers = static_cast<int>(rng_.below(5));
    for (int a = 0; a < answers; ++a) {
      const DnsName name = DnsName::from_string(random_label() + ".local");
      switch (rng_.below(4)) {
        case 0:
          msg.answers.push_back(DnsRecord::make_a(
              name, Ipv4Address(static_cast<std::uint32_t>(rng_.next_u32()))));
          break;
        case 1:
          msg.answers.push_back(DnsRecord::make_ptr(
              name, DnsName::from_string(random_label() + ".local")));
          break;
        case 2: {
          SrvData srv;
          srv.port = static_cast<std::uint16_t>(rng_.below(65536));
          srv.target = DnsName::from_string(random_label() + ".local");
          msg.answers.push_back(DnsRecord::make_srv(name, srv));
          break;
        }
        default:
          msg.answers.push_back(DnsRecord::make_txt(
              name, {"k=" + random_label(), "id=" + random_label()}));
      }
    }
    const auto back = decode_dns(BytesView(encode_dns(msg)));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->questions.size(), msg.questions.size());
    ASSERT_EQ(back->answers.size(), msg.answers.size());
    for (std::size_t i = 0; i < msg.questions.size(); ++i)
      EXPECT_EQ(back->questions[i].name, msg.questions[i].name);
    for (std::size_t i = 0; i < msg.answers.size(); ++i) {
      EXPECT_EQ(back->answers[i].name, msg.answers[i].name);
      EXPECT_EQ(back->answers[i].type, msg.answers[i].type);
      EXPECT_EQ(back->answers[i].rdata, msg.answers[i].rdata);
    }
  }
}

TEST_P(RoundTrip, DhcpMessages) {
  for (int round = 0; round < 50; ++round) {
    DhcpMessage msg;
    msg.is_request = rng_.chance(0.5);
    msg.xid = rng_.next_u32();
    msg.client_mac = MacAddress::from_u64(rng_.next_u64() & 0xffffffffffffull);
    msg.yiaddr = Ipv4Address(rng_.next_u32());
    msg.set_message_type(static_cast<DhcpMessageType>(1 + rng_.below(8)));
    if (rng_.chance(0.7)) msg.set_hostname(random_label());
    if (rng_.chance(0.5)) msg.set_vendor_class("client-" + random_label());
    const auto back = decode_dhcp(BytesView(encode_dhcp(msg)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->xid, msg.xid);
    EXPECT_EQ(back->client_mac, msg.client_mac);
    EXPECT_EQ(back->yiaddr, msg.yiaddr);
    EXPECT_EQ(back->message_type(), msg.message_type());
    EXPECT_EQ(back->hostname(), msg.hostname());
  }
}

TEST_P(RoundTrip, TplinkCipherIsBijective) {
  for (int round = 0; round < 50; ++round) {
    const Bytes plain = rng_.bytes(rng_.below(300));
    EXPECT_EQ(tplink_decrypt(BytesView(tplink_encrypt(BytesView(plain)))),
              plain);
  }
}

TEST_P(RoundTrip, TuyaFrames) {
  for (int round = 0; round < 50; ++round) {
    TuyaFrame frame;
    frame.seq = rng_.next_u32();
    frame.command = static_cast<std::uint32_t>(rng_.below(0x20));
    frame.payload = rng_.bytes(rng_.below(128));
    const auto back = decode_tuya_frame(BytesView(encode_tuya_frame(frame)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seq, frame.seq);
    EXPECT_EQ(back->command, frame.command);
    EXPECT_EQ(back->payload, frame.payload);
  }
}

TEST_P(RoundTrip, CoapMessages) {
  for (int round = 0; round < 50; ++round) {
    CoapMessage msg;
    msg.type = static_cast<CoapType>(rng_.below(4));
    msg.code = static_cast<std::uint8_t>(rng_.below(0x60));
    msg.message_id = static_cast<std::uint16_t>(rng_.below(65536));
    msg.token = rng_.bytes(rng_.below(9));
    msg.set_uri_path(random_label() + "/" + random_label());
    if (rng_.chance(0.5)) msg.payload = rng_.bytes(1 + rng_.below(64));
    const auto back = decode_coap(BytesView(encode_coap(msg)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->message_id, msg.message_id);
    EXPECT_EQ(back->token, msg.token);
    EXPECT_EQ(back->uri_path(), msg.uri_path());
    EXPECT_EQ(back->payload, msg.payload);
  }
}

TEST_P(RoundTrip, PcapFiles) {
  std::vector<PcapRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back({SimTime::from_us(static_cast<std::int64_t>(rng_.below(1u << 30))),
                       rng_.bytes(14 + rng_.below(200))});
  }
  const auto back = decode_pcap(BytesView(encode_pcap(records)));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].frame, records[i].frame);
    EXPECT_EQ((*back)[i].timestamp, records[i].timestamp);
  }
}

TEST_P(RoundTrip, JsonValues) {
  // Random nested JSON survives dump->parse.
  std::function<json::Value(int)> make = [&](int depth) -> json::Value {
    if (depth <= 0 || rng_.chance(0.4)) {
      switch (rng_.below(4)) {
        case 0: return json::Value(nullptr);
        case 1: return json::Value(rng_.chance(0.5));
        case 2: return json::Value(static_cast<double>(rng_.range(-5000, 5000)));
        default: return json::Value("s" + random_label());
      }
    }
    if (rng_.chance(0.5)) {
      json::Array arr;
      const auto n = rng_.below(4);
      for (std::uint64_t i = 0; i < n; ++i) arr.push_back(make(depth - 1));
      return json::Value(std::move(arr));
    }
    json::Object obj;
    const auto n = rng_.below(4);
    for (std::uint64_t i = 0; i < n; ++i)
      obj.emplace("k" + std::to_string(i), make(depth - 1));
    return json::Value(std::move(obj));
  };
  for (int round = 0; round < 30; ++round) {
    const json::Value value = make(4);
    const auto back = json::parse(value.dump());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, value);
  }
}

TEST_P(RoundTrip, ChecksumsSelfVerify) {
  for (int round = 0; round < 50; ++round) {
    // Any IPv4/UDP/TCP packet we emit must verify to zero.
    const Ipv4Address src(rng_.next_u32() | 0x0a000000),
        dst(rng_.next_u32() | 0x0a000000);
    UdpDatagram udp;
    udp.src_port = port(static_cast<std::uint16_t>(1 + rng_.below(65535)));
    udp.dst_port = port(static_cast<std::uint16_t>(1 + rng_.below(65535)));
    udp.payload = rng_.bytes(rng_.below(256));
    EXPECT_EQ(transport_checksum_v4(src, dst, 17,
                                    BytesView(encode_udp_v4(udp, src, dst))),
              0);
    TcpSegment tcp;
    tcp.seq = rng_.next_u32();
    tcp.payload = rng_.bytes(rng_.below(256));
    EXPECT_EQ(transport_checksum_v4(src, dst, 6,
                                    BytesView(encode_tcp_v4(tcp, src, dst))),
              0);
    Ipv4Packet ip;
    ip.src = src;
    ip.dst = dst;
    ip.payload = rng_.bytes(rng_.below(64));
    EXPECT_EQ(internet_checksum(BytesView(encode_ipv4(ip)).first(20)), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Classifier totality & hybrid sanity over arbitrary traffic.
// ---------------------------------------------------------------------------

class ClassifierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierProperty, HybridNeverEmitsKnownWrongLabels) {
  Rng rng(GetParam());
  HybridClassifier hybrid;
  SpecClassifier spec;
  DeepClassifier deep;
  for (int round = 0; round < 300; ++round) {
    Packet p;
    p.eth.src = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
    p.eth.dst = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
    Ipv4Packet ip;
    ip.src = Ipv4Address(rng.next_u32());
    ip.dst = Ipv4Address(rng.next_u32());
    const bool udp = rng.chance(0.5);
    ip.protocol = static_cast<std::uint8_t>(udp ? IpProto::kUdp : IpProto::kTcp);
    p.ipv4 = ip;
    if (udp) {
      UdpDatagram u;
      u.src_port = port(static_cast<std::uint16_t>(1 + rng.below(65535)));
      u.dst_port = port(static_cast<std::uint16_t>(1 + rng.below(65535)));
      u.payload = rng.bytes(rng.below(120));
      p.udp = u;
    } else {
      TcpSegment t;
      t.src_port = port(static_cast<std::uint16_t>(1 + rng.below(65535)));
      t.dst_port = port(static_cast<std::uint16_t>(1 + rng.below(65535)));
      t.payload = rng.bytes(rng.below(120));
      p.tcp = t;
    }
    // All three produce SOME label without crashing; the hybrid's manual
    // rules guarantee the known-wrong labels never escape it.
    (void)spec.classify_packet(p);
    (void)deep.classify_packet(p);
    const ProtocolLabel label = hybrid.classify_packet(p);
    EXPECT_NE(label, ProtocolLabel::kCiscoVpn);
    EXPECT_NE(label, ProtocolLabel::kAmazonAws);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierProperty,
                         ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// Periodicity detection sweep across cadences.
// ---------------------------------------------------------------------------

class PeriodSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeriodSweep, DetectsPeriodWithinTolerance) {
  const double period = GetParam();
  const double window = std::max(3600.0, period * 24);
  std::vector<SimTime> events;
  for (double t = 0.3 * period; t < window; t += period)
    events.push_back(SimTime::from_seconds(t));
  PeriodicityParams params;
  params.bin_seconds = std::max(1.0, period / 16);
  const auto result =
      detect_periodicity(events, SimTime::from_seconds(window), params);
  ASSERT_TRUE(result.periodic) << "period " << period;
  // Detected period within 20% or one bin of truth (or a subharmonic of it).
  const double bin = window / 65536 > params.bin_seconds
                         ? window / 65536
                         : params.bin_seconds;
  const double tolerance = std::max(0.2 * period, 2 * bin);
  const double ratio = result.period_seconds / period;
  const double nearest_multiple = std::round(ratio);
  EXPECT_TRUE(std::abs(result.period_seconds - period) < tolerance ||
              (nearest_multiple >= 1 &&
               std::abs(ratio - nearest_multiple) < 0.2))
      << "true " << period << " detected " << result.period_seconds;
}

INSTANTIATE_TEST_SUITE_P(Cadences, PeriodSweep,
                         ::testing::Values(10.0, 20.0, 60.0, 100.0, 300.0,
                                           900.0, 3600.0, 7200.0));

// ---------------------------------------------------------------------------
// Flow table invariants.
// ---------------------------------------------------------------------------

class FlowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowProperty, EveryTransportPacketLandsInExactlyOneFlow) {
  Rng rng(GetParam());
  FlowTable table;
  std::size_t transport_packets = 0;
  std::vector<Packet> keep;  // backs the flow table's payload views
  keep.reserve(500);
  for (int round = 0; round < 500; ++round) {
    Packet p;
    p.eth.src = MacAddress::from_u64(1 + rng.below(6));
    p.eth.dst = MacAddress::from_u64(1 + rng.below(6));
    Ipv4Packet ip;
    ip.src = Ipv4Address(192, 168, 10, static_cast<std::uint8_t>(2 + rng.below(5)));
    ip.dst = Ipv4Address(192, 168, 10, static_cast<std::uint8_t>(2 + rng.below(5)));
    ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
    p.ipv4 = ip;
    UdpDatagram u;
    u.src_port = port(static_cast<std::uint16_t>(1000 + rng.below(4)));
    u.dst_port = port(static_cast<std::uint16_t>(1000 + rng.below(4)));
    u.payload = rng.bytes(rng.below(32));
    p.udp = u;
    keep.push_back(std::move(p));
    table.add(SimTime::from_ms(round), keep.back());
    ++transport_packets;
  }
  std::size_t in_flows = 0;
  for (const auto& flow : table.flows()) {
    in_flows += flow.packets.size();
    // Timestamps within each flow are monotone.
    for (std::size_t i = 1; i < flow.packets.size(); ++i)
      EXPECT_LE(flow.packets[i - 1].timestamp, flow.packets[i].timestamp);
    // Every packet in the flow matches the key's tuple in one direction.
    for (const auto& packet : flow.packets) {
      (void)packet;
    }
  }
  EXPECT_EQ(in_flows, transport_packets);
  EXPECT_EQ(table.packet_count(), transport_packets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperty, ::testing::Values(3, 13, 23));

// ---------------------------------------------------------------------------
// Crowd generator invariants over seeds.
// ---------------------------------------------------------------------------

class CrowdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrowdProperty, GeneratorInvariants) {
  Rng rng(GetParam());
  InspectorConfig config;
  config.households = 400;
  config.devices = 1310;
  const InspectorDataset dataset = generate_inspector_dataset(rng, config);

  // Exact device count, every device within a valid household & product.
  EXPECT_EQ(dataset.devices.size(), config.devices);
  for (const auto& device : dataset.devices) {
    EXPECT_LT(device.household, config.households);
    EXPECT_LT(device.product_index, dataset.products.size());
    EXPECT_EQ(device.device_id.size(), 16u);
  }
  // Row devices partition the population.
  const FingerprintAnalysis analysis = fingerprint_households(dataset);
  std::size_t devices_in_rows = 0;
  for (const auto& row : analysis.rows) devices_in_rows += row.devices;
  EXPECT_EQ(devices_in_rows, dataset.devices.size());
  // Uniquely-identified never exceeds households; entropy bounded.
  for (const auto& row : analysis.rows) {
    EXPECT_LE(row.uniquely_identified, row.households);
    if (row.households > 0) {
      EXPECT_LE(row.entropy_bits,
                std::log2(static_cast<double>(row.households)) + 1e-9);
    }
  }
}

TEST_P(CrowdProperty, HmacIdsAreSaltDependent) {
  // Same MAC across households must yield different pseudonyms (per-user
  // salts — the privacy property IoT Inspector relies on).
  const Bytes salt1 = Rng(GetParam()).bytes(16);
  const Bytes salt2 = Rng(GetParam() + 1).bytes(16);
  const Bytes mac = bytes_of("02:a0:00:aa:bb:cc");
  EXPECT_NE(hmac_sha256_hex(BytesView(salt1), BytesView(mac)),
            hmac_sha256_hex(BytesView(salt2), BytesView(mac)));
  EXPECT_EQ(hmac_sha256_hex(BytesView(salt1), BytesView(mac)),
            hmac_sha256_hex(BytesView(salt1), BytesView(mac)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrowdProperty, ::testing::Values(100, 200, 300));

// ---------------------------------------------------------------------------
// SHA-256 length sweep (padding boundaries).
// ---------------------------------------------------------------------------

class ShaLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShaLengths, MatchesIncrementalDefinitionAcrossBoundaries) {
  // Property: digests at adjacent lengths differ, are deterministic, and the
  // one-block/two-block padding split is handled (lengths straddle 55/56
  // and 119/120 boundaries).
  const std::size_t n = GetParam();
  const Bytes a(n, 0x61);
  const Sha256Digest d1 = sha256(BytesView(a));
  const Sha256Digest d2 = sha256(BytesView(a));
  EXPECT_EQ(d1, d2);
  Bytes b = a;
  b.push_back(0x61);
  EXPECT_NE(sha256(BytesView(b)), d1);
}

INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, ShaLengths,
                         ::testing::Values(0, 1, 54, 55, 56, 63, 64, 65, 118,
                                           119, 120, 127, 128, 1000));

}  // namespace
}  // namespace roomnet
