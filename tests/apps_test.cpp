// Tests for the app campaign substrate: permission model, dataset
// generation, runtime instrumentation, and the exfiltration audit.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/audit.hpp"
#include "apps/runtime.hpp"
#include "testbed/lab.hpp"

namespace roomnet {
namespace {

// ------------------------------------------------------------- permissions

TEST(Permissions, DangerousClassification) {
  EXPECT_FALSE(is_dangerous(AndroidPermission::kInternet));
  EXPECT_FALSE(is_dangerous(AndroidPermission::kChangeWifiMulticastState));
  EXPECT_TRUE(is_dangerous(AndroidPermission::kAccessFineLocation));
  EXPECT_TRUE(is_dangerous(AndroidPermission::kNearbyWifiDevices));
}

TEST(Permissions, SsidRequirementChangesWithAndroidVersion) {
  EXPECT_EQ(required_permission(SensitiveData::kRouterSsid, 9),
            AndroidPermission::kAccessFineLocation);
  EXPECT_EQ(required_permission(SensitiveData::kRouterSsid, 13),
            AndroidPermission::kNearbyWifiDevices);
}

TEST(Permissions, LanHarvestedDataHasNoProtectingPermission) {
  EXPECT_EQ(required_permission(SensitiveData::kDeviceMac, 9), std::nullopt);
  EXPECT_EQ(required_permission(SensitiveData::kDeviceUuid, 13), std::nullopt);
  EXPECT_EQ(required_permission(SensitiveData::kTplinkOemId, 9), std::nullopt);
  EXPECT_EQ(required_permission(SensitiveData::kLocalDeviceList, 13),
            std::nullopt);
}

// ----------------------------------------------------------------- dataset

TEST(AppDatasetTest, MatchesPaperMarginals) {
  Rng rng(1);
  const AppDataset dataset = generate_app_dataset(rng);
  EXPECT_EQ(dataset.apps.size(), 2335u);
  EXPECT_EQ(dataset.iot_count(), 987u);
  EXPECT_EQ(dataset.regular_count(), 1348u);

  std::size_t mdns = 0, ssdp = 0, netbios = 0, tls = 0;
  std::size_t router_ssid = 0, router_bssid = 0, wifi_mac = 0, device_macs_iot = 0;
  for (const auto& app : dataset.apps) {
    mdns += app.scans_mdns;
    ssdp += app.scans_ssdp;
    netbios += app.scans_netbios;
    tls += app.uses_local_tls;
    router_ssid += app.uploads_router_ssid;
    router_bssid += app.uploads_router_bssid;
    wifi_mac += app.uploads_wifi_mac;
    device_macs_iot += app.uploads_device_macs && app.iot_companion;
  }
  // §4.3 rates: mDNS 6%, SSDP 4%, NetBIOS 0.5% (=10 apps), TLS 25%.
  EXPECT_NEAR(static_cast<double>(mdns) / 2335.0, 0.06, 0.01);
  EXPECT_NEAR(static_cast<double>(ssdp) / 2335.0, 0.04, 0.01);
  EXPECT_LE(netbios, 10u);
  EXPECT_GE(netbios, 5u);
  EXPECT_NEAR(static_cast<double>(tls) / 2335.0, 0.25, 0.03);
  // §6.1: 36 SSID / 28 BSSID / 15 Wi-Fi MAC / 6 IoT apps with device MACs.
  EXPECT_EQ(router_ssid, 36u);
  EXPECT_LE(router_bssid, 28u);
  EXPECT_GE(router_bssid, 20u);
  EXPECT_LE(wifi_mac, 15u);
  EXPECT_EQ(device_macs_iot, 6u);
}

TEST(AppDatasetTest, NamedCaseStudiesPresent) {
  Rng rng(1);
  const AppDataset dataset = generate_app_dataset(rng);
  const AppSpec* lucky = dataset.find("com.luckyapp.winner");
  ASSERT_NE(lucky, nullptr);
  EXPECT_TRUE(lucky->scans_netbios);
  EXPECT_EQ(lucky->sdks, std::vector<SdkId>{SdkId::kInnoSdk});

  const AppSpec* cnn = dataset.find("com.cnn.mobile.android.phone");
  ASSERT_NE(cnn, nullptr);
  EXPECT_EQ(cnn->sdks, std::vector<SdkId>{SdkId::kAppDynamics});
  EXPECT_TRUE(cnn->scans_ssdp);

  EXPECT_NE(dataset.find("org.speedspot.speedspotspeedtest"), nullptr);
  EXPECT_NE(dataset.find("com.amazon.dee.app"), nullptr);
}

TEST(AppDatasetTest, DeterministicForSeed) {
  Rng a(5), b(5);
  const AppDataset da = generate_app_dataset(a);
  const AppDataset db = generate_app_dataset(b);
  ASSERT_EQ(da.apps.size(), db.apps.size());
  for (std::size_t i = 0; i < da.apps.size(); ++i) {
    EXPECT_EQ(da.apps[i].package, db.apps[i].package);
    EXPECT_EQ(da.apps[i].scans_mdns, db.apps[i].scans_mdns);
  }
}

// ----------------------------------------------------------------- runtime

class AppRuntimeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = new Lab(LabConfig{.seed = 21, .record_frames = false});
    lab_->start_all();
    lab_->run_for(SimTime::from_minutes(8));
    runner_ = new AppRunner(*lab_);
  }
  static void TearDownTestSuite() {
    delete runner_;
    delete lab_;
    runner_ = nullptr;
    lab_ = nullptr;
  }
  static Lab* lab_;
  static AppRunner* runner_;
};
Lab* AppRuntimeFixture::lab_ = nullptr;
AppRunner* AppRuntimeFixture::runner_ = nullptr;

TEST_F(AppRuntimeFixture, MdnsScanHarvestsDeviceIdentifiers) {
  AppSpec app;
  app.package = "test.mdns.scanner";
  app.permissions = {AndroidPermission::kInternet,
                     AndroidPermission::kChangeWifiMulticastState};
  app.scans_mdns = true;
  app.uploads_device_macs = true;
  app.first_party_endpoint = "collect.example.com";

  const AppRunRecord record = runner_->run(app);
  EXPECT_TRUE(record.local_protocols.count(ProtocolLabel::kMdns));
  EXPECT_GT(record.devices_discovered, 3u);
  // Device MACs were harvested purely via the LAN side channel.
  bool mac_via_side_channel = false;
  for (const auto& access : record.accesses)
    mac_via_side_channel |= access.data == SensitiveData::kDeviceMac &&
                            access.via_side_channel;
  EXPECT_TRUE(mac_via_side_channel);
  // And exfiltrated.
  ASSERT_FALSE(record.uploads.empty());
  EXPECT_NE(record.uploads[0].payload_json.find("device_mac"),
            std::string::npos);
}

TEST_F(AppRuntimeFixture, TplinkDiscoveryLeaksGeolocationWithoutPermission) {
  AppSpec app;
  app.package = "test.tplink.no-location";
  app.permissions = {AndroidPermission::kInternet};  // no location!
  app.uses_tplink = true;
  app.uploads_geolocation_with_ids = true;
  app.first_party_endpoint = "collect.example.com";

  const AppRunRecord record = runner_->run(app);
  bool geo_side_channel = false;
  for (const auto& access : record.accesses) {
    if (access.data == SensitiveData::kGeolocation) {
      EXPECT_TRUE(access.via_side_channel);
      EXPECT_FALSE(access.permission_held);
      geo_side_channel = true;
    }
  }
  EXPECT_TRUE(geo_side_channel);
  // TP-Link IDs harvested too.
  bool has_oem = false;
  for (const auto& upload : record.uploads)
    has_oem |= upload.payload_json.find("tplink_oem_id") != std::string::npos;
  EXPECT_TRUE(has_oem);
}

TEST_F(AppRuntimeFixture, NetbiosSweepAndArpHarvest) {
  AppSpec app;
  app.package = "test.innosdk.host";
  app.scans_netbios = true;
  app.harvests_arp = true;
  app.sdks = {SdkId::kInnoSdk};
  app.uploads_device_macs = true;
  app.uploads_device_list = true;
  app.first_party_endpoint = "collect.example.com";

  const AppRunRecord record = runner_->run(app, SimTime::from_seconds(30));
  EXPECT_TRUE(record.local_protocols.count(ProtocolLabel::kNetbios));
  EXPECT_TRUE(record.local_protocols.count(ProtocolLabel::kArp));
  // The phone's passively-filled ARP cache yields device MACs.
  std::size_t macs = 0;
  for (const auto& access : record.accesses)
    macs += access.data == SensitiveData::kDeviceMac;
  EXPECT_GT(macs, 5u);
  // The innosdk upload goes to its documented endpoint.
  bool inno_upload = false;
  for (const auto& upload : record.uploads)
    inno_upload |= upload.sdk == SdkId::kInnoSdk &&
                   upload.endpoint == "gw.innotechworld.com";
  EXPECT_TRUE(inno_upload);
}

TEST_F(AppRuntimeFixture, AppDynamicsEncodesSsidInBase64) {
  AppSpec app;
  app.package = "test.cnn.like";
  app.sdks = {SdkId::kAppDynamics};
  app.scans_ssdp = true;
  app.uploads_router_ssid = true;
  app.uploads_device_list = true;
  app.first_party_endpoint = "data.example.com";

  const AppRunRecord record = runner_->run(app);
  bool found = false;
  for (const auto& upload : record.uploads) {
    if (upload.sdk != SdkId::kAppDynamics) continue;
    // "HomeNet-5G" base64 == "SG9tZU5ldC01Rw==".
    found |= upload.payload_json.find("SG9tZU5ldC01Rw==") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(AppRuntimeFixture, BypassDetectedOnlyWithoutPermission) {
  AppSpec with;
  with.package = "test.with.location";
  with.permissions = {AndroidPermission::kInternet,
                      AndroidPermission::kAccessFineLocation};
  with.uploads_router_ssid = true;
  with.first_party_endpoint = "a.example.com";

  AppSpec without = with;
  without.package = "test.without.location";
  without.permissions = {AndroidPermission::kInternet};

  const auto r1 = runner_->run(with);
  const auto r2 = runner_->run(without);
  const auto findings = detect_exfiltration({r1, r2});
  bool with_bypass = false, without_bypass = false;
  for (const auto& finding : findings) {
    if (finding.package == with.package) with_bypass |= finding.permission_bypass;
    if (finding.package == without.package)
      without_bypass |= finding.permission_bypass;
  }
  EXPECT_FALSE(with_bypass);
  EXPECT_TRUE(without_bypass);
}

TEST_F(AppRuntimeFixture, CampaignSummaryCountsCorrectly) {
  std::vector<AppRunRecord> records;
  AppSpec a;
  a.package = "a";
  a.scans_mdns = true;
  a.iot_companion = true;
  a.uploads_device_macs = true;
  a.permissions = {AndroidPermission::kInternet};
  a.first_party_endpoint = "x.example.com";
  records.push_back(runner_->run(a));
  AppSpec b;
  b.package = "b";
  records.push_back(runner_->run(b));

  const AppCampaignStats stats = summarize_campaign(records);
  EXPECT_EQ(stats.total_apps, 2u);
  EXPECT_EQ(stats.apps_scanning_lan, 1u);
  EXPECT_EQ(stats.apps_mdns, 1u);
  EXPECT_EQ(stats.iot_apps_uploading_device_macs, 1u);
  EXPECT_DOUBLE_EQ(stats.pct(1), 50.0);
}

TEST_F(AppRuntimeFixture, IosEntitlementGateBlocksScans) {
  AppSpec app;
  app.package = "test.ios.scanner";
  app.platform = MobilePlatform::kIos;
  app.scans_mdns = true;
  app.scans_ssdp = true;
  app.uploads_device_macs = true;
  app.first_party_endpoint = "collect.example.com";

  // No entitlement: the OS refuses every LAN socket (§2.1 iOS PoC).
  const AppRunRecord blocked = runner_->run(app);
  EXPECT_TRUE(blocked.local_protocols.empty());
  EXPECT_EQ(blocked.devices_discovered, 0u);

  // Entitlement but no user consent: still blocked.
  app.ios.multicast_entitlement = true;
  const AppRunRecord no_consent = runner_->run(app);
  EXPECT_TRUE(no_consent.local_protocols.empty());

  // Both granted: behaves like Android.
  app.ios.local_network_consent = true;
  const AppRunRecord granted = runner_->run(app);
  EXPECT_FALSE(granted.local_protocols.empty());
  EXPECT_GT(granted.devices_discovered, 0u);
}

TEST(IosModel, EntitlementPredicate) {
  EXPECT_FALSE(ios_allows_local_network({}));
  EXPECT_FALSE(ios_allows_local_network({.multicast_entitlement = true}));
  EXPECT_FALSE(ios_allows_local_network({.local_network_consent = true}));
  EXPECT_TRUE(ios_allows_local_network(
      {.multicast_entitlement = true, .local_network_consent = true}));
}

}  // namespace
}  // namespace roomnet
