// Tests for active scanning and vulnerability detection against the
// simulated testbed (§4.2 / §5.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "scan/portscan.hpp"
#include "scan/vuln.hpp"
#include "testbed/lab.hpp"

namespace roomnet {
namespace {

/// Shared lab + scan results (scanning is the slow part; do it once).
class ScanFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = new Lab(LabConfig{.seed = 11, .record_frames = false});
    lab_->start_all();
    lab_->run_for(SimTime::from_minutes(5));

    scan_box_ = new Host(lab_->network(),
                         MacAddress::from_u64(0x02a0fc000001ull), "scanbox");
    scan_box_->set_static_ip(Ipv4Address(192, 168, 10, 250));

    std::vector<ScanTarget> targets;
    for (const auto& device : lab_->devices()) {
      if (!device->host().has_ip()) continue;
      targets.push_back({device->mac(), device->host().ip(),
                         device->spec().vendor + " " + device->spec().model});
    }
    // A trimmed port list keeps the fixture fast while covering every
    // service the profiles open.
    PortScanConfig config;
    config.tcp_ports = {21,    22,    23,    53,    80,    443,   554,
                        1830,  4070,  8001,  8008,  8009,  8060,  8080,
                        8443,  9999,  49152, 49153, 55442, 55443};
    config.udp_ports = {53, 67, 123, 137, 1900, 5353, 5683, 6666, 9999};
    scanner_ = new PortScanner(*scan_box_, config);
    scanner_->start(targets);
    lab_->run_for(scanner_->estimated_duration());

    prober_ = new ServiceProber(*scan_box_);
    prober_->start(scanner_->reports());
    lab_->run_for(prober_->estimated_duration());
  }
  static void TearDownTestSuite() {
    delete prober_;
    delete scanner_;
    delete scan_box_;
    delete lab_;
    prober_ = nullptr;
    scanner_ = nullptr;
    scan_box_ = nullptr;
    lab_ = nullptr;
  }

  static const PortScanReport* report_for(std::string_view needle) {
    for (const auto& report : scanner_->reports())
      if (report.target.label.find(needle) != std::string::npos) return &report;
    return nullptr;
  }
  static const DeviceAudit* audit_for(std::string_view needle) {
    for (const auto& audit : prober_->audits())
      if (audit.target.label.find(needle) != std::string::npos) return &audit;
    return nullptr;
  }

  static Lab* lab_;
  static Host* scan_box_;
  static PortScanner* scanner_;
  static ServiceProber* prober_;
};
Lab* ScanFixture::lab_ = nullptr;
Host* ScanFixture::scan_box_ = nullptr;
PortScanner* ScanFixture::scanner_ = nullptr;
ServiceProber* ScanFixture::prober_ = nullptr;

bool has_port(const std::vector<std::uint16_t>& ports, std::uint16_t p) {
  return std::find(ports.begin(), ports.end(), p) != ports.end();
}

TEST_F(ScanFixture, EchoExposesAmazonPorts) {
  const auto* echo = report_for("Echo Spot");
  ASSERT_NE(echo, nullptr);
  EXPECT_TRUE(has_port(echo->open_tcp, 55442));
  EXPECT_TRUE(has_port(echo->open_tcp, 55443));
  EXPECT_TRUE(has_port(echo->open_tcp, 4070));
  EXPECT_TRUE(echo->responded_tcp);
}

TEST_F(ScanFixture, GoogleExposes8009) {
  const auto* nest = report_for("Nest Hub");
  ASSERT_NE(nest, nullptr);
  EXPECT_TRUE(has_port(nest->open_tcp, 8009));
  EXPECT_TRUE(has_port(nest->open_tcp, 8008));
}

TEST_F(ScanFixture, QuietDeviceHasNoOpenPorts) {
  const auto* scale = report_for("Renpho");
  ASSERT_NE(scale, nullptr);
  EXPECT_TRUE(scale->open_tcp.empty());
}

TEST_F(ScanFixture, UdpProbesElicitResponsesOnlyWithRightPayload) {
  const auto* tplink = report_for("Kasa Plug");
  ASSERT_NE(tplink, nullptr);
  EXPECT_TRUE(has_port(tplink->open_udp, 9999));
  // mDNS devices answer the DNS-SD meta-query.
  const auto* hue = report_for("Hue Hub");
  ASSERT_NE(hue, nullptr);
  EXPECT_TRUE(has_port(hue->open_udp, 5353));
}

TEST_F(ScanFixture, ManyDevicesRespondToTcpFewToUdp) {
  int tcp = 0, udp = 0, ip = 0;
  for (const auto& report : scanner_->reports()) {
    tcp += report.responded_tcp;
    udp += report.responded_udp;
    ip += report.responded_ip;
  }
  // Paper shape (§4.2): 54 TCP responders > 20 UDP responders; 58 IP.
  EXPECT_GT(tcp, udp);
  EXPECT_GT(tcp, 30);
  EXPECT_GT(ip, tcp / 2);
}

TEST_F(ScanFixture, NmapStyleInferenceIsWrongForIotPorts) {
  // Port 8009 is Cast TLS, but the port table says AJP (§3.5's complaint).
  EXPECT_EQ(infer_service_from_port(8009, false), "ajp13");
  const auto* nest = audit_for("Nest Hub");
  ASSERT_NE(nest, nullptr);
  const auto it = std::find_if(
      nest->services.begin(), nest->services.end(),
      [](const ServiceObservation& s) { return s.port == 8009 && !s.udp; });
  ASSERT_NE(it, nest->services.end());
  EXPECT_EQ(it->inferred_service, "ajp13");
  EXPECT_EQ(it->corrected_service, "tls");  // the banner-validated truth
}

TEST_F(ScanFixture, GoogleCertificateHasWeakKeyAndPrivatePki) {
  const auto* nest = audit_for("Nest Hub");
  ASSERT_NE(nest, nullptr);
  for (const auto& service : nest->services) {
    if (service.port != 8009 || service.udp) continue;
    ASSERT_TRUE(service.certificate.has_value());
    EXPECT_LT(service.certificate->key_bits, 128);
    EXPECT_FALSE(service.certificate->self_signed());
    EXPECT_NEAR(service.certificate->validity_years(), 20, 0.2);
    return;
  }
  FAIL() << "no 8009 observation";
}

TEST_F(ScanFixture, EchoCertificateSelfSignedNinetyDays) {
  const auto* echo = audit_for("Echo Show 5");
  ASSERT_NE(echo, nullptr);
  for (const auto& service : echo->services) {
    if (service.port != 55443 || !service.certificate) continue;
    EXPECT_TRUE(service.certificate->self_signed());
    EXPECT_EQ(service.certificate->validity_days, 90u);
    // CN is a local IP (§5.2).
    EXPECT_TRUE(service.certificate->subject_cn.starts_with("192.168."));
    return;
  }
  FAIL() << "no 55443 certificate";
}

TEST_F(ScanFixture, VulnScannerReproducesPaperFindings) {
  const auto findings = scan_vulnerabilities(prober_->audits());
  const auto has = [&](std::string_view id, std::string_view device) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const VulnFinding& f) {
                         return f.id == id &&
                                f.device.find(device) != std::string::npos;
                       });
  };
  // Google port-8009 weak key (high severity, CVE-2016-2183).
  EXPECT_TRUE(has("CVE-2016-2183", "Google"));
  // SheerDNS on the HomePod Mini.
  EXPECT_TRUE(has("nessus-11535", "HomePod Mini"));
  // DNS cache snooping on HomePod Mini and WeMo.
  EXPECT_TRUE(has("nessus-12217", "HomePod Mini"));
  EXPECT_TRUE(has("nessus-12217", "WeMo"));
  // Microseven: jQuery 1.2 XSS + unauthenticated snapshot + account list.
  EXPECT_TRUE(has("CVE-2020-11022", "Microseven"));
  EXPECT_TRUE(has("roomnet-onvif-snapshot", "Microseven"));
  EXPECT_TRUE(has("roomnet-account-enum", "Microseven"));
  // Lefun backup exposure.
  EXPECT_TRUE(has("roomnet-backup-exposure", "Lefun"));
  // Telnet on the cheap cameras.
  EXPECT_TRUE(has("roomnet-telnet", "ICSee"));
  // Long-lived certificates on D-Link/SmartThings/Hue.
  EXPECT_TRUE(has("roomnet-cert-longlived", "D-Link"));
  EXPECT_TRUE(has("roomnet-cert-longlived", "SmartThings"));
}

TEST_F(ScanFixture, FindingsCarrySeverityAndEvidence) {
  const auto findings = scan_vulnerabilities(prober_->audits());
  ASSERT_FALSE(findings.empty());
  int high = 0;
  for (const auto& f : findings) {
    EXPECT_FALSE(f.title.empty());
    EXPECT_FALSE(f.evidence.empty());
    high += f.severity == Severity::kHigh;
  }
  EXPECT_GT(high, 5);  // 11 Google weak keys + camera exposures
}

TEST(PortScanConfigTest, DefaultsAndFullRange) {
  const PortScanConfig config;
  EXPECT_GE(config.tcp_ports.size(), 1024u);
  EXPECT_TRUE(std::find(config.tcp_ports.begin(), config.tcp_ports.end(),
                        55443) != config.tcp_ports.end());
  const auto all = PortScanConfig::tcp_all();
  EXPECT_EQ(all.size(), 65535u);
  EXPECT_EQ(all.front(), 1);
  EXPECT_EQ(all.back(), 65535);
}

}  // namespace
}  // namespace roomnet
