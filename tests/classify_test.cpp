// Tests for the classification substrate: spec/deep/hybrid classifiers,
// the documented error modes, cross-validation, FFT/autocorrelation
// periodicity, and discovery-response correlation.
#include <gtest/gtest.h>

#include <cmath>

#include <deque>

#include "classify/classifier.hpp"
#include "classify/crossval.hpp"
#include "classify/periodicity.hpp"
#include "classify/response.hpp"
#include "netcore/rng.hpp"
#include "proto/dhcp.hpp"
#include "proto/dns.hpp"
#include "proto/media.hpp"
#include "proto/ssdp.hpp"
#include "proto/tls.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"
#include "sim/host.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) { return MacAddress::from_u64(0x02a000000000ull | n); }

Packet udp_packet(std::uint16_t sport, std::uint16_t dport, Bytes payload,
                  MacAddress src_mac = mac_n(1)) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = mac_n(2);
  Ipv4Packet ip;
  ip.src = Ipv4Address(192, 168, 10, 5);
  ip.dst = Ipv4Address(192, 168, 10, 6);
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  p.ipv4 = ip;
  UdpDatagram u;
  u.src_port = port(sport);
  u.dst_port = port(dport);
  u.payload = std::move(payload);
  p.udp = u;
  return p;
}

Packet tcp_packet(std::uint16_t sport, std::uint16_t dport, Bytes payload) {
  Packet p = udp_packet(sport, dport, {});
  p.udp.reset();
  p.ipv4->protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  TcpSegment t;
  t.src_port = port(sport);
  t.dst_port = port(dport);
  t.payload = std::move(payload);
  p.tcp = t;
  return p;
}

Flow flow_of(const std::vector<Packet>& packets) {
  // FlowPacket.payload is a view; the call sites pass temporaries, so park
  // a copy of the packets in a process-lifetime arena to back the views.
  static std::deque<std::vector<Packet>> arena;
  arena.push_back(packets);
  FlowTable table;
  SimTime at;
  for (const auto& p : arena.back()) {
    table.add(at, p);
    at += SimTime::from_ms(5);
  }
  return table.flows().at(0);
}

// ------------------------------------------------------- both classifiers

TEST(Classifiers, AgreeOnCommonProtocols) {
  SpecClassifier spec;
  DeepClassifier deep;

  DnsMessage mdns;
  mdns.questions.push_back({DnsName::from_string("_hue._tcp.local"),
                            DnsType::kPtr, false});
  const Packet mdns_pkt = udp_packet(5353, 5353, encode_dns(mdns));
  EXPECT_EQ(spec.classify_packet(mdns_pkt), ProtocolLabel::kMdns);
  EXPECT_EQ(deep.classify_packet(mdns_pkt), ProtocolLabel::kMdns);

  DhcpMessage dhcp;
  dhcp.set_message_type(DhcpMessageType::kDiscover);
  const Packet dhcp_pkt = udp_packet(68, 67, encode_dhcp(dhcp));
  EXPECT_EQ(spec.classify_packet(dhcp_pkt), ProtocolLabel::kDhcp);
  EXPECT_EQ(deep.classify_packet(dhcp_pkt), ProtocolLabel::kDhcp);

  SsdpMessage msearch;
  msearch.kind = SsdpKind::kMSearch;
  msearch.search_target = "ssdp:all";
  const Packet ssdp_pkt = udp_packet(50000, 1900, encode_ssdp(msearch));
  EXPECT_EQ(spec.classify_packet(ssdp_pkt), ProtocolLabel::kSsdp);
  EXPECT_EQ(deep.classify_packet(ssdp_pkt), ProtocolLabel::kSsdp);

  Rng rng(1);
  TlsClientHello hello;
  hello.random = rng.bytes(32);
  hello.cipher_suites = {0x1301};
  const Packet tls_pkt = tcp_packet(50001, 8009, encode_client_hello(hello));
  EXPECT_EQ(spec.classify_packet(tls_pkt), ProtocolLabel::kTls);
  EXPECT_EQ(deep.classify_packet(tls_pkt), ProtocolLabel::kTls);

  const Packet arp_pkt = [] {
    Packet p;
    p.eth.src = mac_n(1);
    p.eth.dst = MacAddress::kBroadcast;
    p.arp = ArpPacket{};
    return p;
  }();
  EXPECT_EQ(spec.classify_packet(arp_pkt), ProtocolLabel::kArp);
  EXPECT_EQ(deep.classify_packet(arp_pkt), ProtocolLabel::kArp);
}

TEST(Classifiers, TplinkUdpRecognized) {
  SpecClassifier spec;
  DeepClassifier deep;
  const Packet pkt =
      udp_packet(9999, 9999, encode_tplink_udp(tplink_get_sysinfo_request()));
  EXPECT_EQ(spec.classify_packet(pkt), ProtocolLabel::kTplinkShp);
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kTplinkShp);
}

TEST(Classifiers, TuyaRecognized) {
  DeepClassifier deep;
  TuyaDiscovery d;
  d.gw_id = "gw";
  const Packet pkt = udp_packet(6666, 6666, encode_tuya_discovery(d));
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kTuyaLp);
  SpecClassifier spec;
  EXPECT_EQ(spec.classify_packet(pkt), ProtocolLabel::kTuyaLp);
}

// -------------------------------------------- documented error modes (C.2)

TEST(SpecClassifier, SsdpUnicastResponseFlowBecomesGenericUdp) {
  // Response flow: TV:1900 -> phone:50123. First packet source = TV.
  SsdpMessage res;
  res.kind = SsdpKind::kResponse;
  res.search_target = "upnp:rootdevice";
  const Packet pkt = udp_packet(1900, 50123, encode_ssdp(res));
  const Flow flow = flow_of({pkt});
  SpecClassifier spec;
  DeepClassifier deep;
  EXPECT_EQ(spec.classify_flow(flow), ProtocolLabel::kGenericUdp);
  EXPECT_EQ(deep.classify_flow(flow), ProtocolLabel::kSsdp);  // nDPI gets it
}

TEST(SpecClassifier, OverTriggersTplinkOnD0Byte) {
  // An unknown vendor beacon that happens to start with 0xd0.
  Bytes beacon = {0xd0, 0x42, 0x42, 0x42};
  const Packet pkt = udp_packet(56700, 56700, beacon);
  SpecClassifier spec;
  DeepClassifier deep;
  EXPECT_EQ(spec.classify_packet(pkt), ProtocolLabel::kTplinkShp);
  // Deep decrypts and sees non-JSON -> stays unknown.
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kUnknown);
}

TEST(DeepClassifier, IgdSearchMislabeledCiscoVpn) {
  SsdpMessage msearch;
  msearch.kind = SsdpKind::kMSearch;
  msearch.search_target =
      "urn:schemas-upnp-org:device:InternetGatewayDevice:1";
  const Packet pkt = udp_packet(50000, 1900, encode_ssdp(msearch));
  DeepClassifier deep;
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kCiscoVpn);
  // The hybrid's manual rule corrects it.
  HybridClassifier hybrid;
  EXPECT_EQ(hybrid.classify_packet(pkt), ProtocolLabel::kSsdp);
}

TEST(DeepClassifier, NintendoEapolMislabeledAmazonAws) {
  const auto nintendo_oui = OuiRegistry::builtin().oui_of("Nintendo");
  ASSERT_TRUE(nintendo_oui.has_value());
  Packet pkt;
  pkt.eth.src = MacAddress::from_u64(
      (static_cast<std::uint64_t>(*nintendo_oui) << 24) | 1);
  pkt.eth.dst = MacAddress::kBroadcast;
  pkt.eapol = EapolFrame{};
  DeepClassifier deep;
  SpecClassifier spec;
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kAmazonAws);
  EXPECT_EQ(spec.classify_packet(pkt), ProtocolLabel::kEapol);
  HybridClassifier hybrid;
  EXPECT_EQ(hybrid.classify_packet(pkt), ProtocolLabel::kEapol);
}

TEST(BothClassifiers, GoogleRtpOn10000RangeLabeledStun) {
  RtpPacket rtp;
  rtp.payload = Bytes(32, 0x11);
  const Packet pkt = udp_packet(10002, 10004, encode_rtp(rtp));
  SpecClassifier spec;
  DeepClassifier deep;
  EXPECT_EQ(spec.classify_packet(pkt), ProtocolLabel::kStun);
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kStun);
  // Hybrid's controlled-experiment rule recovers RTP.
  HybridClassifier hybrid;
  EXPECT_EQ(hybrid.classify_packet(pkt), ProtocolLabel::kRtp);
}

TEST(DeepClassifier, RtpOffGoogleRangeIsRtp) {
  RtpPacket rtp;
  rtp.payload = Bytes(16, 0x22);
  const Packet pkt = udp_packet(55444, 55444, encode_rtp(rtp));
  DeepClassifier deep;
  EXPECT_EQ(deep.classify_packet(pkt), ProtocolLabel::kRtp);
}

// --------------------------------------------------------- cross-validation

TEST(CrossValidation, CountsAgreementAndDisagreement) {
  std::vector<Flow> flows;
  // Agreeing flow: mDNS.
  DnsMessage mdns;
  mdns.questions.push_back({DnsName::from_string("_x._tcp.local"),
                            DnsType::kPtr, false});
  flows.push_back(flow_of({udp_packet(5353, 5353, encode_dns(mdns))}));
  // Disagreeing flow: SSDP unicast response.
  SsdpMessage res;
  res.kind = SsdpKind::kResponse;
  res.search_target = "upnp:rootdevice";
  flows.push_back(flow_of({udp_packet(1900, 50123, encode_ssdp(res))}));
  // Unlabeled-by-both flow: random payload on random ports.
  flows.push_back(flow_of({udp_packet(40000, 40001, Bytes{0x99, 0x98, 0x97})}));

  const CrossValidation cv = cross_validate(flows, std::vector<Packet>{});
  EXPECT_EQ(cv.total, 3u);
  EXPECT_EQ(cv.agreed, 1u);
  EXPECT_EQ(cv.disagreed, 1u);
  EXPECT_EQ(cv.neither_labeled, 1u);
  EXPECT_NEAR(cv.agreement_rate(), 1.0 / 3, 1e-9);
  // The (GenericUdp, Ssdp) cell exists in the matrix.
  EXPECT_EQ(
      (cv.matrix.at({ProtocolLabel::kGenericUdp, ProtocolLabel::kSsdp})), 1u);
}

// ------------------------------------------------------------- periodicity

TEST(Fft, InverseRecoversInput) {
  Rng rng(3);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.uniform(), rng.uniform()};
    original[i] = data[i];
  }
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, SingleToneSpectrum) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = std::cos(2 * 3.14159265358979 * 8 * static_cast<double>(i) /
                       static_cast<double>(n));
  fft(data);
  // Energy concentrated at bins 8 and n-8.
  double peak = std::abs(data[8]);
  for (std::size_t k = 1; k < n / 2; ++k) {
    if (k == 8) continue;
    EXPECT_LT(std::abs(data[k]), peak / 10);
  }
}

TEST(Autocorrelation, PeriodicSeriesPeaksAtPeriod) {
  std::vector<double> series(256, 0.0);
  for (std::size_t i = 0; i < series.size(); i += 16) series[i] = 1.0;
  const auto ac = autocorrelation(series);
  EXPECT_NEAR(ac[0], 1.0, 1e-9);
  EXPECT_GT(ac[16], 0.8);
  EXPECT_LT(ac[8], 0.3);
}

TEST(Periodicity, DetectsTwentySecondBeacon) {
  std::vector<SimTime> events;
  for (int i = 0; i < 180; ++i)
    events.push_back(SimTime::from_seconds(i * 20.0));
  const auto result =
      detect_periodicity(events, SimTime::from_seconds(3600));
  ASSERT_TRUE(result.periodic);
  // Bin width is 3600/4096 s; accept a coarse match.
  EXPECT_NEAR(result.period_seconds, 20.0, 2.0);
}

TEST(Periodicity, RejectsPoissonArrivals) {
  Rng rng(17);
  std::vector<SimTime> events;
  double t = 0;
  while (t < 3600) {
    t += -20.0 * std::log(1.0 - rng.uniform());  // exp(mean 20s)
    events.push_back(SimTime::from_seconds(t));
  }
  const auto result = detect_periodicity(events, SimTime::from_seconds(3600));
  EXPECT_FALSE(result.periodic);
}

TEST(Periodicity, TooFewEventsIsNotPeriodic) {
  const std::vector<SimTime> events = {SimTime::from_seconds(1),
                                       SimTime::from_seconds(2)};
  EXPECT_FALSE(detect_periodicity(events, SimTime::from_seconds(100)).periodic);
}

TEST(Periodicity, TwoHourBeaconOverFiveDays) {
  // Echo's Lifx beacon: every 2 hours across a 5-day idle capture (§5.1).
  std::vector<SimTime> events;
  for (int i = 0; i < 60; ++i) events.push_back(SimTime::from_hours(i * 2.0));
  PeriodicityParams params;
  params.bin_seconds = 600;  // 10-minute bins for a long window
  const auto result =
      detect_periodicity(events, SimTime::from_days(5), params);
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.period_seconds, 7200, 600);
}

// ------------------------------------------------- response correlation

TEST(ResponseCorrelation, PairsDiscoveryWithUnicastReply) {
  std::vector<std::pair<SimTime, Packet>> capture;

  // Phone multicasts an SSDP M-SEARCH at t=0 from port 50000.
  SsdpMessage msearch;
  msearch.kind = SsdpKind::kMSearch;
  msearch.search_target = "ssdp:all";
  Packet query = udp_packet(50000, 1900, encode_ssdp(msearch), mac_n(10));
  query.eth.dst = multicast_mac_v4(kSsdpGroupV4);
  query.ipv4->dst = kSsdpGroupV4;
  capture.emplace_back(SimTime::from_seconds(0), query);

  // TV replies unicast at t=1 to phone:50000.
  SsdpMessage res;
  res.kind = SsdpKind::kResponse;
  res.search_target = "upnp:rootdevice";
  Packet reply = udp_packet(1900, 50000, encode_ssdp(res), mac_n(20));
  reply.eth.dst = mac_n(10);
  capture.emplace_back(SimTime::from_seconds(1), reply);

  const auto stats = correlate_responses(capture);
  ASSERT_EQ(stats.matches.size(), 1u);
  EXPECT_EQ(stats.matches[0].responder, mac_n(20));
  EXPECT_EQ(stats.matches[0].discovery.protocol, ProtocolLabel::kSsdp);
  EXPECT_TRUE(stats.answered_protocols.at(mac_n(10)).count(ProtocolLabel::kSsdp));
  EXPECT_EQ(stats.responders.at(mac_n(10)).size(), 1u);
}

TEST(ResponseCorrelation, LateReplyOutsideWindowIgnored) {
  std::vector<std::pair<SimTime, Packet>> capture;
  SsdpMessage msearch;
  msearch.kind = SsdpKind::kMSearch;
  msearch.search_target = "ssdp:all";
  Packet query = udp_packet(50000, 1900, encode_ssdp(msearch), mac_n(10));
  query.eth.dst = multicast_mac_v4(kSsdpGroupV4);
  capture.emplace_back(SimTime::from_seconds(0), query);

  SsdpMessage res;
  res.kind = SsdpKind::kResponse;
  res.search_target = "upnp:rootdevice";
  Packet reply = udp_packet(1900, 50000, encode_ssdp(res), mac_n(20));
  reply.eth.dst = mac_n(10);
  capture.emplace_back(SimTime::from_seconds(10), reply);  // > 3 s window

  const auto stats = correlate_responses(capture);
  EXPECT_TRUE(stats.matches.empty());
  // Discovery usage is still recorded.
  EXPECT_TRUE(stats.discovery_protocols.at(mac_n(10)).count(ProtocolLabel::kSsdp));
}

TEST(ResponseCorrelation, ArpAndDhcpExcludedFromTable4) {
  std::vector<std::pair<SimTime, Packet>> capture;
  Packet arp;
  arp.eth.src = mac_n(1);
  arp.eth.dst = MacAddress::kBroadcast;
  arp.arp = ArpPacket{};
  capture.emplace_back(SimTime{}, arp);
  const auto stats = correlate_responses(capture);
  EXPECT_TRUE(stats.discovery_protocols.empty());
}

}  // namespace
}  // namespace roomnet
