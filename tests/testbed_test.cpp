// Tests for the MonIoTr testbed reproduction: catalog shape, behavior
// profiles, device boot, and integration over a short idle capture.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "capture/filter.hpp"
#include "capture/flow.hpp"
#include "classify/classifier.hpp"
#include "proto/matter.hpp"
#include "proto/ssdp.hpp"
#include "proto/tplink.hpp"
#include "proto/tuya.hpp"
#include "testbed/lab.hpp"

namespace roomnet {
namespace {

// ----------------------------------------------------------------- catalog

TEST(Catalog, HasNinetyThreeDevices) {
  EXPECT_EQ(moniotr_catalog().size(), 93u);
}

TEST(Catalog, CategoryCountsMatchTable3) {
  std::map<DeviceCategory, int> counts;
  for (const auto& spec : moniotr_catalog()) ++counts[spec.category];
  EXPECT_EQ(counts[DeviceCategory::kGameConsole], 1);
  EXPECT_EQ(counts[DeviceCategory::kGenericIot], 7);
  EXPECT_EQ(counts[DeviceCategory::kHomeAppliance], 10);
  EXPECT_EQ(counts[DeviceCategory::kHomeAutomation], 21);
  EXPECT_EQ(counts[DeviceCategory::kMediaTv], 7);
  EXPECT_EQ(counts[DeviceCategory::kSurveillance], 19);
  EXPECT_EQ(counts[DeviceCategory::kVoiceAssistant], 28);
}

TEST(Catalog, VendorCountsMatchTable3) {
  std::map<std::string, int> vendors;
  for (const auto& spec : moniotr_catalog()) ++vendors[spec.vendor];
  EXPECT_EQ(vendors["Amazon"], 19);  // 17 VA + Fire TV + Smart Plug
  EXPECT_EQ(vendors["Google"], 11);  // 7 VA + thermostat + TV + 2 cameras
  EXPECT_EQ(vendors["Apple"], 4);
  EXPECT_EQ(vendors["Ring"], 5);
  EXPECT_EQ(vendors["Tuya"], 5);  // 1 generic + 3 automation + 1 camera
  EXPECT_EQ(vendors["TP-Link"], 2);
  EXPECT_EQ(vendors["Withings"], 3);
  EXPECT_EQ(vendors["Meross"], 3);
  EXPECT_EQ(vendors["Samsung"], 4);
}

TEST(Catalog, ModelsAreNearlyUnique) {
  // Paper: 78 unique models among 93 devices. Ours are fully distinct
  // except where the catalog names repeat units; assert a sane lower bound.
  EXPECT_GE(unique_model_count(), 78u);
}

// ---------------------------------------------------------------- profiles

TEST(Profiles, EchoProfileMatchesPaperObservations) {
  const auto& catalog = moniotr_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].vendor != "Amazon" || catalog[i].model != "Echo Spot")
      continue;
    const DeviceBehavior b = behavior_for(catalog[i], i);
    EXPECT_TRUE(b.arp_daily_scan);
    EXPECT_TRUE(b.arp_unicast_probes);
    EXPECT_GE(b.ssdp_msearch_interval_s, 7200);   // every 2-3 h
    EXPECT_LE(b.ssdp_msearch_interval_s, 10800);
    EXPECT_EQ(b.ssdp_search_targets[0], "ssdp:all");  // generic searches
    EXPECT_DOUBLE_EQ(b.lifx_beacon_interval_s, 7200);  // UDP 56700, 2 h
    ASSERT_TRUE(b.tls_server.has_value());
    EXPECT_EQ(b.tls_server->port, 55443);
    EXPECT_EQ(b.tls_server->validity_days, 90u);  // 3-month self-signed
    EXPECT_EQ(b.tls_server->cert, CertPolicy::kSelfSignedLocalIp);
    EXPECT_GE(b.mdns_query_interval_s, 20);
    EXPECT_LE(b.mdns_query_interval_s, 100);
    return;
  }
  FAIL() << "Echo Spot not in catalog";
}

TEST(Profiles, GoogleProfileHasWeakKeyPort8009) {
  const auto& catalog = moniotr_catalog();
  int checked = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].vendor != "Google") continue;
    const DeviceBehavior b = behavior_for(catalog[i], i);
    ASSERT_TRUE(b.tls_server.has_value());
    EXPECT_EQ(b.tls_server->port, 8009);
    EXPECT_GE(b.tls_server->key_bits, 64);
    EXPECT_LE(b.tls_server->key_bits, 122);  // the Nessus finding
    EXPECT_EQ(b.tls_server->cert, CertPolicy::kPrivatePki);
    EXPECT_EQ(b.tls_server->validity_days, 20u * 365);  // 20-year leaf
    EXPECT_DOUBLE_EQ(b.ssdp_msearch_interval_s, 20);    // every 20 s
    ++checked;
  }
  EXPECT_EQ(checked, 11);
}

TEST(Profiles, AppleUsesTls13WithEncryptedCerts) {
  const auto& catalog = moniotr_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].vendor != "Apple") continue;
    const DeviceBehavior b = behavior_for(catalog[i], i);
    ASSERT_TRUE(b.tls_server.has_value());
    EXPECT_EQ(b.tls_server->version, TlsVersion::kTls13);
    EXPECT_EQ(b.tls_server->cert, CertPolicy::kEncrypted);
  }
}

TEST(Profiles, HomePodMiniRunsSheerDns) {
  const auto& catalog = moniotr_catalog();
  int minis = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].model.find("HomePod Mini") == std::string::npos) continue;
    const DeviceBehavior b = behavior_for(catalog[i], i);
    EXPECT_TRUE(b.dns_server);
    EXPECT_EQ(b.dns_banner, "SheerDNS 1.0.0");
    EXPECT_GT(b.coap_query_interval_s, 0);
    ++minis;
  }
  EXPECT_EQ(minis, 2);
}

TEST(Profiles, GeMicrowaveRandomizesHostnames) {
  const auto& catalog = moniotr_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].vendor != "GE") continue;
    EXPECT_EQ(behavior_for(catalog[i], i).hostname_policy,
              HostnamePolicy::kRandomized);
  }
}

TEST(Profiles, NineOrSoDevicesRunUpnp10) {
  const auto& catalog = moniotr_catalog();
  int upnp10 = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const DeviceBehavior b = behavior_for(catalog[i], i);
    if (b.ssdp_server.find("UPnP/1.0") != std::string::npos) ++upnp10;
    if (!b.ssdp_server_rotation.empty()) continue;
  }
  EXPECT_GE(upnp10, 8);
  EXPECT_LE(upnp10, 25);
}

TEST(Profiles, TpLinkExposesGeolocation) {
  const auto& catalog = moniotr_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].vendor != "TP-Link") continue;
    const DeviceBehavior b = behavior_for(catalog[i], i);
    EXPECT_TRUE(b.tplink_server);
    EXPECT_NE(b.latitude, 0);
    EXPECT_NE(b.longitude, 0);
  }
}

// --------------------------------------------------------------- lab boot

TEST(Lab, AllDevicesAcquireLeases) {
  Lab lab;
  lab.start_all();
  lab.run_for(SimTime::from_minutes(10));
  int with_ip = 0;
  for (const auto& device : lab.devices()) with_ip += device->host().has_ip();
  EXPECT_EQ(with_ip, 93);
  EXPECT_TRUE(lab.pixel().has_ip());
  EXPECT_TRUE(lab.iphone().has_ip());
  // All leases distinct.
  std::set<std::uint32_t> ips;
  for (const auto& device : lab.devices()) ips.insert(device->host().ip().value());
  EXPECT_EQ(ips.size(), 93u);
}

TEST(Lab, DeterministicAcrossRunsWithSameSeed) {
  const auto run = [] {
    Lab lab(LabConfig{.seed = 7});
    lab.start_all();
    lab.run_for(SimTime::from_minutes(20));
    return lab.capture().size();
  };
  const auto frames1 = run();
  const auto frames2 = run();
  EXPECT_EQ(frames1, frames2);
  EXPECT_GT(frames1, 500u);
}

TEST(Lab, DifferentSeedsDiffer) {
  Lab a(LabConfig{.seed = 1}), b(LabConfig{.seed = 2});
  a.start_all();
  b.start_all();
  a.run_for(SimTime::from_minutes(10));
  b.run_for(SimTime::from_minutes(10));
  EXPECT_NE(a.capture().size(), b.capture().size());
}

TEST(Lab, FindLocatesDevices) {
  Lab lab;
  EXPECT_NE(lab.find("Echo Spot"), nullptr);
  EXPECT_NE(lab.find("Hue Hub"), nullptr);
  EXPECT_EQ(lab.find("Nonexistent Gadget"), nullptr);
}

// -------------------------------------------------- idle-capture integration

class IdleCapture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lab_ = new Lab(LabConfig{.seed = 42});
    lab_->start_all();
    lab_->run_for(SimTime::from_minutes(45));
  }
  static void TearDownTestSuite() {
    delete lab_;
    lab_ = nullptr;
  }
  static Lab* lab_;
};
Lab* IdleCapture::lab_ = nullptr;

TEST_F(IdleCapture, EveryFrameIsLocal) {
  const LocalFilter filter;
  int local = 0, total = 0;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    ++total;
    local += filter.matches(packet);
  }
  EXPECT_GT(total, 1000);
  EXPECT_EQ(local, total);  // the simulated LAN has no WAN uplink
}

TEST_F(IdleCapture, CoreProtocolsPresent) {
  HybridClassifier classifier;
  std::set<ProtocolLabel> seen;
  FlowTable flows;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    seen.insert(classifier.classify_packet(packet));
    flows.add(at, packet);
  }
  for (const ProtocolLabel expected :
       {ProtocolLabel::kArp, ProtocolLabel::kDhcp, ProtocolLabel::kEapol,
        ProtocolLabel::kIcmp, ProtocolLabel::kIgmp, ProtocolLabel::kMdns,
        ProtocolLabel::kSsdp, ProtocolLabel::kTls, ProtocolLabel::kTuyaLp,
        ProtocolLabel::kIcmpv6, ProtocolLabel::kDhcpv6,
        ProtocolLabel::kMatter, ProtocolLabel::kUnknown}) {
    EXPECT_TRUE(seen.count(expected)) << "missing " << to_string(expected);
  }
  EXPECT_GT(flows.flows().size(), 50u);
}

TEST_F(IdleCapture, TuyaBeaconCarriesGwid) {
  bool found = false;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (!packet.udp || value(packet.udp->dst_port) != 6666) continue;
    const auto d = decode_tuya_discovery(packet.app_payload());
    if (d && !d->gw_id.empty()) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IdleCapture, GoogleSsdpEvery20Seconds) {
  // Count M-SEARCHes from one Google device over the window.
  const TestbedDevice* google = nullptr;
  for (const auto& device : lab_->devices())
    if (device->spec().vendor == "Google" &&
        device->spec().category == DeviceCategory::kVoiceAssistant) {
      google = device.get();
      break;
    }
  ASSERT_NE(google, nullptr);
  int msearches = 0;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (packet.eth.src != google->mac()) continue;
    if (!packet.udp || value(packet.udp->dst_port) != 1900) continue;
    if (string_of(packet.app_payload()).starts_with("M-SEARCH")) ++msearches;
  }
  // ~45 min at 20 s => ~135 expected; allow generous slack for boot time.
  EXPECT_GT(msearches, 80);
}

TEST_F(IdleCapture, InteractionsLightUpHttpAndTplinkControl) {
  // Run interactions on top of the idle state.
  lab_->run_interactions(300);
  HybridClassifier classifier;
  FlowTable flows;
  // The flow table records payload views into these packets; the named
  // local keeps them alive past the loop (decoded() returns by value).
  const auto decoded = lab_->capture().decoded();
  for (const auto& [at, packet] : decoded) flows.add(at, packet);
  int http_flows = 0, tplink_tcp = 0;
  for (const auto& flow : flows.flows()) {
    const ProtocolLabel label = classifier.classify_flow(flow);
    if (label == ProtocolLabel::kHttp) ++http_flows;
    if (label == ProtocolLabel::kTplinkShp &&
        flow.key.protocol == static_cast<std::uint8_t>(IpProto::kTcp))
      ++tplink_tcp;
  }
  EXPECT_GT(http_flows, 0);
  EXPECT_GT(tplink_tcp, 0);
}

TEST_F(IdleCapture, LgTvRotatesFirmwareStrings) {
  // §5.1: LG TV NOTIFYs alternate between three WebOS firmware versions.
  std::set<std::string> servers;
  const TestbedDevice* lg = nullptr;
  for (const auto& device : lab_->devices())
    if (device->spec().vendor == "LG" &&
        device->spec().category == DeviceCategory::kMediaTv)
      lg = device.get();
  ASSERT_NE(lg, nullptr);
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (packet.eth.src != lg->mac() || !packet.udp) continue;
    if (value(packet.udp->dst_port) != 1900) continue;
    const auto msg = decode_ssdp(packet.app_payload());
    if (msg && msg->kind == SsdpKind::kNotify && !msg->server.empty())
      servers.insert(msg->server);
  }
  EXPECT_GE(servers.size(), 2u);  // 45-min window catches >= 2 of the 3
  for (const auto& server : servers)
    EXPECT_NE(server.find("WebOS"), std::string::npos) << server;
}

TEST_F(IdleCapture, FireTvAnnouncesBogusSlash16Location) {
  // §5.1: Fire TV NOTIFYs advertise a 192.168.0.0/16 LOCATION that does not
  // exist on this LAN (the misconfiguration finding).
  bool bogus_location = false;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (!packet.udp || value(packet.udp->dst_port) != 1900) continue;
    const auto msg = decode_ssdp(packet.app_payload());
    if (msg && msg->kind == SsdpKind::kNotify &&
        msg->location.find("192.168.0.0") != std::string::npos)
      bogus_location = true;
  }
  EXPECT_TRUE(bogus_location);
}

TEST_F(IdleCapture, PlatformInteropCrossesVendors) {
  // §4.1: Alexa controls TP-Link gear over TPLINK-SHP TCP; platforms hit the
  // Hue REST API and Roku ECP over HTTP — inter-manufacturer unicast.
  const TestbedDevice* echo = lab_->find("Echo Spot");
  const TestbedDevice* kasa = lab_->find("Kasa Plug");
  ASSERT_NE(echo, nullptr);
  ASSERT_NE(kasa, nullptr);
  bool echo_to_kasa_tcp = false;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (packet.tcp && packet.eth.src == echo->mac() &&
        packet.eth.dst == kasa->mac() &&
        value(packet.tcp->dst_port) == 9999)
      echo_to_kasa_tcp = true;
  }
  EXPECT_TRUE(echo_to_kasa_tcp);
}

TEST_F(IdleCapture, EchoMatterAdvertisementsExposeMacInstance) {
  // §7: Matter "exposes MAC addresses in mDNS discovery" — the
  // commissionable instance name is the MAC in plain hex.
  bool matter_mac_instance = false;
  for (const auto& [at, packet] : lab_->capture().decoded()) {
    if (!packet.udp || value(packet.udp->dst_port) != 5353) continue;
    const auto msg = decode_dns(packet.app_payload());
    if (!msg || !msg->is_response) continue;
    const auto node = parse_matter_advertisement(*msg);
    if (!node) continue;
    const auto mac = MacAddress::parse(node->instance);
    matter_mac_instance |= mac.has_value() && mac == packet.eth.src;
  }
  EXPECT_TRUE(matter_mac_instance);
}

// -------------------------------------------- per-device parameterized sweep

/// Invariants that must hold for every one of the 93 catalog devices.
class CatalogSweep : public ::testing::TestWithParam<int> {};

TEST_P(CatalogSweep, BehaviorProfileIsWellFormed) {
  const std::size_t index = static_cast<std::size_t>(GetParam());
  const DeviceSpec& spec = moniotr_catalog()[index];
  const DeviceBehavior b = behavior_for(spec, index);

  // Intervals are non-negative and sane (nothing faster than 1 s).
  for (const double interval :
       {b.eapol_interval_s, b.icmpv6_interval_s, b.ping_gateway_interval_s,
        b.mdns_query_interval_s, b.ssdp_msearch_interval_s,
        b.ssdp_notify_interval_s, b.tplink_scan_interval_s, b.tuya_interval_s,
        b.coap_query_interval_s, b.lifx_beacon_interval_s,
        b.unknown_beacon_interval_s, b.rtp_interval_s,
        b.cluster_tls_interval_s, b.http_poll_interval_s,
        b.matter_interval_s, b.cluster_udp_interval_s}) {
    EXPECT_GE(interval, 0) << spec.vendor << " " << spec.model;
    if (interval > 0) {
      EXPECT_GE(interval, 1.0);
    }
  }
  if (b.tls_server) {
    EXPECT_GT(b.tls_server->port, 0);
    EXPECT_GT(b.tls_server->key_bits, 0);
    EXPECT_GT(b.tls_server->validity_days, 0u);
  }
  if (b.mdns_query_interval_s > 0) {
    EXPECT_FALSE(b.mdns_query_types.empty());
  }
  if (b.ssdp_msearch_interval_s > 0) {
    EXPECT_FALSE(b.ssdp_search_targets.empty());
  }
  if (b.unknown_beacon_interval_s > 0) {
    EXPECT_NE(b.unknown_beacon_port, 0);
  }
  // Every open service port is valid.
  for (const auto& http : b.http_servers) EXPECT_GT(http.port, 0);
}

TEST_P(CatalogSweep, DeviceIdentityExpansion) {
  const std::size_t index = static_cast<std::size_t>(GetParam());
  const DeviceSpec& spec = moniotr_catalog()[index];
  EventLoop loop;
  Switch net(loop);
  Rng rng(99);
  TestbedDevice device(net, spec, behavior_for(spec, index),
                       MacAddress::from_u64(0x02a000900000ull + index), rng);

  // Placeholders expand to device-specific values.
  const std::string mac_tail = device.expand("{MACTAIL}");
  EXPECT_EQ(mac_tail.size(), 6u);
  EXPECT_EQ(device.expand("{MAC}"), device.mac().to_string());
  EXPECT_EQ(device.expand("{UUID}"), device.uuid().to_string());
  EXPECT_NE(device.expand("{MODEL}").find(spec.model), std::string::npos);
  // No placeholder survives expansion.
  const std::string all = device.expand("{MAC}{MACPLAIN}{MACTAIL}{UUID}{NAME}{MODEL}{SERIAL}");
  EXPECT_EQ(all.find('{'), std::string::npos);

  // The DHCP hostname honors the policy.
  const std::string hostname = device.dhcp_hostname();
  switch (device.behavior().hostname_policy) {
    case HostnamePolicy::kNone:
      EXPECT_TRUE(hostname.empty());
      break;
    case HostnamePolicy::kNameWithMac:
      EXPECT_NE(hostname.find(device.mac().to_string_plain()),
                std::string::npos);
      break;
    case HostnamePolicy::kVendorPartialMac:
      EXPECT_NE(hostname.find(spec.vendor), std::string::npos);
      break;
    default:
      EXPECT_FALSE(hostname.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllNinetyThree, CatalogSweep,
                         ::testing::Range(0, 93));

}  // namespace
}  // namespace roomnet
