// Replays every committed fuzz finding through every harness entry point.
// The corpus under tests/fuzz/corpus/regressions/ holds minimized
// reproducers for past decoder bugs plus crafted adversarial inputs (label
// pointer loops, length-field overflows, pathological nesting). Each file
// runs through ALL harnesses, not just the one that found it — a frame
// that once broke the DNS parser is also a perfectly good stream or
// payload input, and cross-replay is free.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness.hpp"

namespace roomnet::fuzz {
namespace {

namespace fs = std::filesystem;

std::optional<Bytes> load_hex(const fs::path& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  Bytes out;
  int hi = -1;
  bool comment = false;
  char c = 0;
  while (f.get(c)) {
    if (c == '#') comment = true;
    if (c == '\n') comment = false;
    if (comment || std::isspace(static_cast<unsigned char>(c))) continue;
    int nibble = -1;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else return std::nullopt;
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<std::uint8_t>(hi << 4 | nibble));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;
  return out;
}

std::optional<Bytes> load_corpus_file(const fs::path& path) {
  if (path.extension() == ".hex") return load_hex(path);
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  Bytes out{std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
  return out;
}

struct CorpusEntry {
  std::string name;
  Bytes data;
};

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = [] {
    std::vector<CorpusEntry> out;
    const fs::path root(ROOMNET_FUZZ_CORPUS_DIR);
    if (!fs::is_directory(root)) return out;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root))
      if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      auto data = load_corpus_file(file);
      EXPECT_TRUE(data.has_value())
          << "unreadable or malformed corpus file: " << file;
      if (data)
        out.push_back({fs::relative(file, root).string(), std::move(*data)});
    }
    return out;
  }();
  return entries;
}

void replay_all(std::string_view harness_name) {
  const HarnessInfo* harness = find_harness(harness_name);
  ASSERT_NE(harness, nullptr);
  ASSERT_FALSE(corpus().empty())
      << "regression corpus missing at " << ROOMNET_FUZZ_CORPUS_DIR;
  for (const auto& entry : corpus()) {
    SCOPED_TRACE(entry.name);
    // A regression either aborts (harness invariant / sanitizer report) or
    // returns 0; reaching the next line is the assertion.
    EXPECT_EQ(harness->entry(BytesView(entry.data)), 0);
  }
}

TEST(FuzzRegressions, RegistryIsComplete) {
  std::size_t count = 0;
  const HarnessInfo* all = harness_registry(&count);
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(count, 8u);
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(find_harness(all[i].name), &all[i]);
  EXPECT_EQ(find_harness("no-such-harness"), nullptr);
}

TEST(FuzzRegressions, Frame) { replay_all("frame"); }
TEST(FuzzRegressions, Roundtrip) { replay_all("roundtrip"); }
TEST(FuzzRegressions, Dns) { replay_all("dns"); }
TEST(FuzzRegressions, Dhcp) { replay_all("dhcp"); }
TEST(FuzzRegressions, Ssdp) { replay_all("ssdp"); }
TEST(FuzzRegressions, Tls) { replay_all("tls"); }
TEST(FuzzRegressions, Payload) { replay_all("payload"); }
TEST(FuzzRegressions, Stream) { replay_all("stream"); }

}  // namespace
}  // namespace roomnet::fuzz
