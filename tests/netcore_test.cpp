// Unit tests for the netcore substrate: byte I/O, addresses, checksums,
// packet codecs, pcap, UUIDs, RNG determinism.
#include <gtest/gtest.h>

#include "netcore/address.hpp"
#include "netcore/bytes.hpp"
#include "netcore/checksum.hpp"
#include "netcore/packet.hpp"
#include "netcore/pcap.hpp"
#include "netcore/rng.hpp"
#include "netcore/uuid.hpp"

namespace roomnet {
namespace {

// ------------------------------------------------------------------- bytes

TEST(ByteReader, ReadsBigEndianIntegers) {
  const Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  ByteReader r{BytesView(data)};
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u32(), 0x04050607u);
  EXPECT_EQ(r.u8(), 0x08);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, FailsOnOverrun) {
  const Bytes data = {0x01};
  ByteReader r{BytesView(data)};
  EXPECT_EQ(r.u16(), std::nullopt);
  EXPECT_FALSE(r.ok());
  // Once failed, everything fails.
  EXPECT_EQ(r.u8(), std::nullopt);
}

TEST(ByteReader, LittleEndianVariants) {
  const Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  ByteReader r{BytesView(data)};
  EXPECT_EQ(r.u16_le(), 0x0201);
  EXPECT_EQ(r.u32_le(), 0x06050403u);
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.u8(0xab).u16(0x1234).u32(0xdeadbeef).u64(0x0102030405060708ull);
  w.str("hey");
  ByteReader r{BytesView(w.data())};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.str(3), "hey");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteWriter, PatchRewritesLengthField) {
  ByteWriter w;
  w.u16(0);
  w.str("abcdef");
  w.patch_u16(0, static_cast<std::uint16_t>(w.size() - 2));
  ByteReader r{BytesView(w.data())};
  EXPECT_EQ(r.u16(), 6);
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(to_hex(BytesView(data)), "00ff10ab");
  EXPECT_EQ(from_hex("00ff10ab"), data);
  EXPECT_EQ(from_hex("00 ff 10 ab"), data);
  EXPECT_EQ(from_hex("0g"), std::nullopt);
  EXPECT_EQ(from_hex("abc"), std::nullopt);
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode(BytesView(bytes_of(""))), "");
  EXPECT_EQ(base64_encode(BytesView(bytes_of("f"))), "Zg==");
  EXPECT_EQ(base64_encode(BytesView(bytes_of("fo"))), "Zm8=");
  EXPECT_EQ(base64_encode(BytesView(bytes_of("foo"))), "Zm9v");
  EXPECT_EQ(base64_encode(BytesView(bytes_of("foobar"))), "Zm9vYmFy");
}

TEST(Base64, DecodeInvertsEncode) {
  Rng rng(7);
  for (std::size_t n = 0; n < 40; ++n) {
    const Bytes data = rng.bytes(n);
    const auto back = base64_decode(base64_encode(BytesView(data)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

TEST(Base64, RejectsGarbage) {
  EXPECT_EQ(base64_decode("Zm9v!"), std::nullopt);
  EXPECT_EQ(base64_decode("Zg==Zg"), std::nullopt);
}

// --------------------------------------------------------------- addresses

TEST(MacAddress, ParseAndFormat) {
  const auto mac = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
  EXPECT_EQ(mac->to_string_plain(), "AABBCCDDEEFF");
  EXPECT_EQ(mac->oui(), 0xaabbccu);
  EXPECT_EQ(MacAddress::parse("AA-BB-CC-DD-EE-FF"), *mac);
  EXPECT_EQ(MacAddress::parse("aabbccddeeff"), *mac);
  EXPECT_EQ(MacAddress::parse("aa:bb:cc"), std::nullopt);
  EXPECT_EQ(MacAddress::parse("zz:bb:cc:dd:ee:ff"), std::nullopt);
}

TEST(MacAddress, MulticastAndBroadcastBits) {
  EXPECT_TRUE(MacAddress::kBroadcast.is_broadcast());
  EXPECT_TRUE(MacAddress::kBroadcast.is_multicast());
  const auto mdns = MacAddress::parse("01:00:5e:00:00:fb").value();
  EXPECT_TRUE(mdns.is_multicast());
  EXPECT_FALSE(mdns.is_broadcast());
  const auto unicast = MacAddress::from_u64(0x02a0000012ull);
  EXPECT_FALSE(unicast.is_multicast());
}

TEST(MacAddress, U64RoundTrip) {
  const auto mac = MacAddress::from_u64(0x0123456789abull);
  EXPECT_EQ(mac.to_u64(), 0x0123456789abull);
  EXPECT_EQ(mac.to_string(), "01:23:45:67:89:ab");
}

TEST(Ipv4Address, ParseAndFormat) {
  const auto ip = Ipv4Address::parse("192.168.10.42");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.10.42");
  EXPECT_EQ(Ipv4Address::parse("192.168.10"), std::nullopt);
  EXPECT_EQ(Ipv4Address::parse("192.168.10.256"), std::nullopt);
  EXPECT_EQ(Ipv4Address::parse("192.168.10.42.1"), std::nullopt);
}

TEST(Ipv4Address, PrivateRanges) {
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 31, 255, 1).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address(8, 8, 8, 8).is_private());
  EXPECT_TRUE(Ipv4Address(169, 254, 0, 5).is_private());
}

TEST(Ipv4Address, MulticastAndSubnets) {
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 251).is_multicast());
  EXPECT_TRUE(Ipv4Address(239, 255, 255, 250).is_multicast());
  EXPECT_FALSE(Ipv4Address(192, 168, 1, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(255, 255, 255, 255).is_broadcast());
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 77)
                  .in_subnet(Ipv4Address(192, 168, 1, 0), 24));
  EXPECT_FALSE(Ipv4Address(192, 168, 2, 77)
                   .in_subnet(Ipv4Address(192, 168, 1, 0), 24));
}

TEST(Ipv6Address, ParseAndCanonicalFormat) {
  const auto a = Ipv6Address::parse("fe80::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "fe80::1");
  EXPECT_TRUE(a->is_link_local());

  const auto full = Ipv6Address::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->to_string(), "2001:db8::ff00:42:8329");

  EXPECT_EQ(Ipv6Address::parse("::").value().to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("not-an-ip"), std::nullopt);
  EXPECT_EQ(Ipv6Address::parse("1:2:3"), std::nullopt);
  EXPECT_EQ(Ipv6Address::parse("1::2::3"), std::nullopt);
}

TEST(Ipv6Address, LinkLocalFromMacUsesEui64) {
  const auto mac = MacAddress::parse("02:a0:00:12:34:56").value();
  const auto ll = Ipv6Address::link_local_from_mac(mac);
  EXPECT_TRUE(ll.is_link_local());
  // U/L bit flipped: 02 -> 00.
  EXPECT_EQ(ll.to_string(), "fe80::a0:ff:fe12:3456");
}

TEST(Ipv6Address, WellKnownGroups) {
  EXPECT_EQ(Ipv6Address::all_nodes().to_string(), "ff02::1");
  EXPECT_EQ(Ipv6Address::mdns_group().to_string(), "ff02::fb");
  const auto target = Ipv6Address::parse("fe80::1:2:3:4").value();
  const auto sn = Ipv6Address::solicited_node(target);
  EXPECT_TRUE(sn.is_multicast());
  EXPECT_EQ(sn.bytes()[13], target.bytes()[13]);
}

TEST(OuiRegistry, BuiltinVendors) {
  const auto& reg = OuiRegistry::builtin();
  const auto amazon_oui = reg.oui_of("Amazon");
  ASSERT_TRUE(amazon_oui.has_value());
  const auto mac = MacAddress::from_u64(
      (static_cast<std::uint64_t>(*amazon_oui) << 24) | 0x123456);
  EXPECT_EQ(reg.vendor_of(mac), "Amazon");
  EXPECT_EQ(reg.vendor_of(MacAddress::from_u64(0xffffff000000ull)), std::nullopt);
}

// ---------------------------------------------------------------- checksum

TEST(Checksum, Rfc1071Example) {
  // RFC 1071's canonical example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
  // checksum (one's complement) 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(BytesView(data)), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const Bytes even = {0x12, 0x34, 0x56, 0x00};
  const Bytes odd = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(BytesView(even)), internet_checksum(BytesView(odd)));
}

// ------------------------------------------------------------------ codecs

TEST(Ethernet, RoundTrip) {
  EthernetFrame f;
  f.dst = MacAddress::kBroadcast;
  f.src = MacAddress::from_u64(0x02a000000001ull);
  f.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  f.payload = bytes_of("payload");
  const Bytes raw = encode_ethernet(f);
  ASSERT_EQ(raw.size(), 14 + 7u);
  const auto back = decode_ethernet(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst, f.dst);
  EXPECT_EQ(back->src, f.src);
  EXPECT_EQ(back->ethertype, f.ethertype);
  EXPECT_EQ(back->payload, f.payload);
}

TEST(Ethernet, RejectsTruncated) {
  const Bytes tiny = {0x01, 0x02, 0x03};
  EXPECT_EQ(decode_ethernet(BytesView(tiny)), std::nullopt);
}

TEST(Arp, RoundTrip) {
  ArpPacket a;
  a.op = ArpOp::kRequest;
  a.sender_mac = MacAddress::from_u64(0x02a000000001ull);
  a.sender_ip = Ipv4Address(192, 168, 1, 10);
  a.target_mac = MacAddress{};
  a.target_ip = Ipv4Address(192, 168, 1, 20);
  const auto back = decode_arp(BytesView(encode_arp(a)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, ArpOp::kRequest);
  EXPECT_EQ(back->sender_ip, a.sender_ip);
  EXPECT_EQ(back->target_ip, a.target_ip);
  EXPECT_EQ(back->sender_mac, a.sender_mac);
}

TEST(Arp, RejectsNonEthernetHardware) {
  Bytes raw = encode_arp(ArpPacket{});
  raw[1] = 6;  // hardware type != 1
  EXPECT_EQ(decode_arp(BytesView(raw)), std::nullopt);
}

TEST(Ipv4, RoundTripWithChecksum) {
  Ipv4Packet p;
  p.src = Ipv4Address(192, 168, 1, 10);
  p.dst = Ipv4Address(192, 168, 1, 255);
  p.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  p.ttl = 64;
  p.identification = 0x1234;
  p.payload = bytes_of("hello ip");
  const Bytes raw = encode_ipv4(p);
  // Header checksum must validate (sum over header == 0 when folded).
  EXPECT_EQ(internet_checksum(BytesView(raw).first(20)), 0);
  const auto back = decode_ipv4(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->protocol, p.protocol);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Ipv4, RejectsTruncatedTotalLength) {
  Ipv4Packet p;
  p.payload = bytes_of("0123456789");
  Bytes raw = encode_ipv4(p);
  raw.resize(raw.size() - 4);  // truncate below total_length
  EXPECT_EQ(decode_ipv4(BytesView(raw)), std::nullopt);
}

TEST(Ipv6, RoundTrip) {
  Ipv6Packet p;
  p.src = Ipv6Address::parse("fe80::1").value();
  p.dst = Ipv6Address::mdns_group();
  p.next_header = static_cast<std::uint8_t>(IpProto::kUdp);
  p.payload = bytes_of("v6 payload");
  const auto back = decode_ipv6(BytesView(encode_ipv6(p)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Udp, RoundTripAndChecksum) {
  UdpDatagram u;
  u.src_port = port(5353);
  u.dst_port = port(5353);
  u.payload = bytes_of("mdns-ish");
  const Ipv4Address src(192, 168, 1, 10), dst(224, 0, 0, 251);
  const Bytes raw = encode_udp_v4(u, src, dst);
  // Verifying: checksum over segment with pseudo-header must fold to zero.
  EXPECT_EQ(transport_checksum_v4(src, dst, 17, BytesView(raw)), 0);
  const auto back = decode_udp(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_port, u.src_port);
  EXPECT_EQ(back->dst_port, u.dst_port);
  EXPECT_EQ(back->payload, u.payload);
}

TEST(Tcp, RoundTripFlagsAndSeq) {
  TcpSegment t;
  t.src_port = port(51000);
  t.dst_port = port(8009);
  t.seq = 1000;
  t.ack = 2000;
  t.flags = {.syn = true, .ack = true};
  t.payload = bytes_of("tls?");
  const Ipv4Address src(192, 168, 1, 10), dst(192, 168, 1, 20);
  const Bytes raw = encode_tcp_v4(t, src, dst);
  EXPECT_EQ(transport_checksum_v4(src, dst, 6, BytesView(raw)), 0);
  const auto back = decode_tcp(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->flags.syn);
  EXPECT_TRUE(back->flags.ack);
  EXPECT_FALSE(back->flags.fin);
  EXPECT_EQ(back->seq, 1000u);
  EXPECT_EQ(back->ack, 2000u);
  EXPECT_EQ(back->payload, t.payload);
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    const auto f = TcpFlags::from_byte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(f.to_byte(), b);
  }
}

TEST(Icmp, RoundTrip) {
  IcmpMessage m;
  m.type = 8;
  m.code = 0;
  m.body = bytes_of("ping");
  const auto back = decode_icmp(BytesView(encode_icmp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, 8);
  EXPECT_EQ(back->body, m.body);
}

TEST(Icmpv6, NeighborSolicitationCarriesMacOption) {
  const auto mac = MacAddress::from_u64(0x02a000aabbccull);
  const auto src = Ipv6Address::link_local_from_mac(mac);
  const auto target = Ipv6Address::parse("fe80::42").value();
  Icmpv6Message m;
  m.type = Icmpv6Type::kNeighborSolicitation;
  m.target = target;
  m.link_layer_option = mac;
  const Bytes raw = encode_icmpv6(m, src, Ipv6Address::solicited_node(target));
  const auto back = decode_icmpv6(BytesView(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, Icmpv6Type::kNeighborSolicitation);
  ASSERT_TRUE(back->target.has_value());
  EXPECT_EQ(*back->target, target);
  ASSERT_TRUE(back->link_layer_option.has_value());
  EXPECT_EQ(*back->link_layer_option, mac);
}

TEST(Igmp, RoundTrip) {
  IgmpMessage m;
  m.type = 0x16;
  m.group = Ipv4Address(239, 255, 255, 250);
  const auto back = decode_igmp(BytesView(encode_igmp(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->group, m.group);
}

TEST(Eapol, RoundTrip) {
  EapolFrame f;
  f.type = EapolType::kKey;
  f.body = bytes_of("key-data");
  const auto back = decode_eapol(BytesView(encode_eapol(f)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, EapolType::kKey);
  EXPECT_EQ(back->body, f.body);
}

TEST(LlcXid, RoundTrip) {
  LlcXidFrame f;
  f.dsap = 0x00;
  f.ssap = 0x01;
  f.is_xid = true;
  f.info = {0x81, 0x01, 0x00};
  const auto back = decode_llc(BytesView(encode_llc_xid(f)));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_xid);
  EXPECT_EQ(back->info, f.info);
}

// ------------------------------------------------------------ decode_frame

TEST(DecodeFrame, FullUdpStack) {
  UdpDatagram u;
  u.src_port = port(1900);
  u.dst_port = port(1900);
  u.payload = bytes_of("M-SEARCH * HTTP/1.1\r\n\r\n");
  const Ipv4Address src(192, 168, 1, 7), dst(239, 255, 255, 250);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.payload = encode_udp_v4(u, src, dst);
  EthernetFrame eth;
  eth.dst = MacAddress::parse("01:00:5e:7f:ff:fa").value();
  eth.src = MacAddress::from_u64(0x02a000000007ull);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);

  const auto p = decode_frame(BytesView(encode_ethernet(eth)));
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->ipv4.has_value());
  ASSERT_TRUE(p->udp.has_value());
  EXPECT_EQ(p->udp->dst_port, port(1900));
  EXPECT_EQ(string_of(p->app_payload()), "M-SEARCH * HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(p->has_ip());
  EXPECT_TRUE(p->has_transport());
}

TEST(DecodeFrame, ArpFrame) {
  ArpPacket a;
  a.op = ArpOp::kRequest;
  a.sender_ip = Ipv4Address(192, 168, 1, 1);
  a.target_ip = Ipv4Address(192, 168, 1, 2);
  EthernetFrame eth;
  eth.dst = MacAddress::kBroadcast;
  eth.src = MacAddress::from_u64(1);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kArp);
  eth.payload = encode_arp(a);
  const auto p = decode_frame(BytesView(encode_ethernet(eth)));
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->arp.has_value());
  EXPECT_FALSE(p->has_ip());
  EXPECT_EQ(p->arp->target_ip, a.target_ip);
}

TEST(DecodeFrame, LlcFrameViaLengthField) {
  LlcXidFrame f;
  f.is_xid = true;
  EthernetFrame eth;
  eth.dst = MacAddress::kBroadcast;
  eth.src = MacAddress::from_u64(2);
  eth.payload = encode_llc_xid(f);
  eth.ethertype = static_cast<std::uint16_t>(eth.payload.size());  // length
  const auto p = decode_frame(BytesView(encode_ethernet(eth)));
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->llc.has_value());
  EXPECT_TRUE(p->llc->is_xid);
}

TEST(DecodeFrame, GarbageTransportDoesNotKillDecode) {
  Ipv4Packet ip;
  ip.src = Ipv4Address(192, 168, 1, 7);
  ip.dst = Ipv4Address(192, 168, 1, 8);
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.payload = bytes_of("xx");  // far too short for a TCP header
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(3);
  eth.src = MacAddress::from_u64(4);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);
  const auto p = decode_frame(BytesView(encode_ethernet(eth)));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->ipv4.has_value());
  EXPECT_FALSE(p->tcp.has_value());
}

// -------------------------------------------------------------------- pcap

TEST(Pcap, RoundTripsRecords) {
  std::vector<PcapRecord> records;
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    PcapRecord rec;
    rec.timestamp = SimTime::from_ms(i * 125);
    rec.frame = rng.bytes(static_cast<std::size_t>(20 + i * 7));
    records.push_back(std::move(rec));
  }
  const Bytes file = encode_pcap(records);
  const auto back = decode_pcap(BytesView(file));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].timestamp, records[i].timestamp);
    EXPECT_EQ((*back)[i].frame, records[i].frame);
  }
}

TEST(Pcap, GlobalHeaderFields) {
  const Bytes file = encode_pcap({});
  ASSERT_GE(file.size(), 24u);
  // Magic 0xa1b2c3d4 little-endian on disk.
  EXPECT_EQ(file[0], 0xd4);
  EXPECT_EQ(file[1], 0xc3);
  EXPECT_EQ(file[2], 0xb2);
  EXPECT_EQ(file[3], 0xa1);
  // Linktype Ethernet (1).
  EXPECT_EQ(file[20], 1);
}

TEST(Pcap, RejectsBadMagic) {
  Bytes file = encode_pcap({});
  file[0] = 0x00;
  EXPECT_EQ(decode_pcap(BytesView(file)), std::nullopt);
}

TEST(Pcap, RejectsTruncatedRecord) {
  PcapRecord rec;
  rec.frame = Bytes(64, 0xaa);
  Bytes file = encode_pcap({rec});
  file.resize(file.size() - 10);
  EXPECT_EQ(decode_pcap(BytesView(file)), std::nullopt);
}

TEST(Pcap, FileIo) {
  const std::string path = testing::TempDir() + "/roomnet_pcap_test.pcap";
  PcapRecord rec;
  rec.timestamp = SimTime::from_seconds(1.5);
  rec.frame = bytes_of("0123456789abcdef");
  ASSERT_TRUE(write_pcap_file(path, {rec}));
  const auto back = read_pcap_file(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].frame, rec.frame);
  EXPECT_EQ((*back)[0].timestamp.us(), 1500000);
}

// -------------------------------------------------------------------- uuid

TEST(Uuid, FormatAndParse) {
  Rng rng(1);
  const Uuid u = Uuid::random(rng);
  const std::string s = u.to_string();
  EXPECT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  const auto back = Uuid::parse(s);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, u);
  EXPECT_EQ(Uuid::parse("not-a-uuid"), std::nullopt);
  EXPECT_EQ(Uuid::parse(s.substr(1)), std::nullopt);
}

TEST(Uuid, Version4Bits) {
  Rng rng(2);
  const Uuid u = Uuid::random(rng);
  EXPECT_EQ(u.bytes()[6] >> 4, 4);
  EXPECT_EQ(u.bytes()[8] >> 6, 2);
}

TEST(Uuid, FromMacEmbedsNode) {
  Rng rng(3);
  const auto mac = MacAddress::parse("02:a0:07:12:34:56").value();
  const Uuid u = Uuid::from_mac(rng, mac);
  EXPECT_EQ(u.node_mac(), mac);
  // MAC hex appears at the tail of the string form.
  EXPECT_NE(u.to_string().find("02a007123456"), std::string::npos);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsStableAndIndependent) {
  Rng a(42), b(42);
  Rng fa = a.fork("devices");
  Rng fb = b.fork("devices");
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  Rng other = Rng(42).fork("apps");
  EXPECT_NE(fa.next_u64(), other.next_u64());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace roomnet
