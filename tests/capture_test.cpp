// Tests for the capture substrate: sink, per-MAC splitting, local filter,
// flow assembly.
#include <gtest/gtest.h>

#include "capture/arpspoof.hpp"
#include "capture/capture.hpp"
#include "capture/filter.hpp"
#include "capture/flow.hpp"
#include "sim/host.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) { return MacAddress::from_u64(0x02a000000000ull | n); }

struct Lan {
  EventLoop loop;
  Switch net{loop};
  CaptureSink capture;
  Lan() { capture.attach(net); }
  void settle(double s = 5.0) { loop.run_until(loop.now() + SimTime::from_seconds(s)); }
};

TEST(CaptureSink, RecordsAllFramesWithTimestamps) {
  Lan lan;
  Host a(lan.net, mac_n(1), "a");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  lan.loop.run_until(SimTime::from_seconds(1));
  a.arp_request(Ipv4Address(192, 168, 10, 9));
  lan.settle();
  ASSERT_EQ(lan.capture.size(), 1u);
  EXPECT_EQ(lan.capture.records()[0].timestamp, SimTime::from_seconds(1));
}

TEST(CaptureSink, SplitsBySourceMac) {
  Lan lan;
  Host a(lan.net, mac_n(1), "a");
  Host b(lan.net, mac_n(2), "b");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  b.set_static_ip(Ipv4Address(192, 168, 10, 3));
  a.arp_request(Ipv4Address(192, 168, 10, 7));
  a.arp_request(Ipv4Address(192, 168, 10, 8));
  b.arp_request(Ipv4Address(192, 168, 10, 9));
  lan.settle();
  const auto split = lan.capture.split_by_source();
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split.at(a.mac()).size(), 2u);
  EXPECT_EQ(split.at(b.mac()).size(), 1u);
}

TEST(CaptureSink, WritesPcapDirectory) {
  Lan lan;
  Host a(lan.net, mac_n(1), "a");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  a.arp_request(Ipv4Address(192, 168, 10, 7));
  lan.settle();
  const std::string dir = testing::TempDir() + "/roomnet_capture_test";
  EXPECT_EQ(lan.capture.write_pcap_dir(dir), 2u);  // all.pcap + one device
  const auto all = read_pcap_file(dir + "/all.pcap");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), 1u);
}

TEST(LocalFilter, MatchesPaperRules) {
  LocalFilter filter;  // 192.168.10.0/24

  const auto make_ipv4 = [](Ipv4Address src, Ipv4Address dst, bool bcast_mac) {
    Packet p;
    p.eth.src = mac_n(1);
    p.eth.dst = bcast_mac ? MacAddress::kBroadcast : mac_n(2);
    Ipv4Packet ip;
    ip.src = src;
    ip.dst = dst;
    p.ipv4 = ip;
    return p;
  };

  // Local unicast: both in subnet.
  EXPECT_TRUE(filter.matches(make_ipv4(Ipv4Address(192, 168, 10, 5),
                                       Ipv4Address(192, 168, 10, 6), false)));
  // Cloud-bound unicast: excluded.
  EXPECT_FALSE(filter.matches(make_ipv4(Ipv4Address(192, 168, 10, 5),
                                        Ipv4Address(52, 1, 2, 3), false)));
  // Broadcast MAC: always local, even with an off-subnet IP.
  EXPECT_TRUE(filter.matches(make_ipv4(Ipv4Address(192, 168, 10, 5),
                                       Ipv4Address(8, 8, 8, 8), true)));
  // Non-IP unicast (ARP): local.
  Packet arp;
  arp.eth.src = mac_n(1);
  arp.eth.dst = mac_n(2);
  arp.arp = ArpPacket{};
  EXPECT_TRUE(filter.matches(arp));
}

TEST(LocalFilter, Ipv6LinkLocalOnly) {
  LocalFilter filter;
  Packet p;
  p.eth.src = mac_n(1);
  p.eth.dst = mac_n(2);
  Ipv6Packet ip;
  ip.src = Ipv6Address::parse("fe80::1").value();
  ip.dst = Ipv6Address::parse("fe80::2").value();
  p.ipv6 = ip;
  EXPECT_TRUE(filter.matches(p));
  ip.dst = Ipv6Address::parse("2001:db8::1").value();
  p.ipv6 = ip;
  EXPECT_FALSE(filter.matches(p));
}

TEST(PrivateToPrivate, CrowdsourcedMembership) {
  Packet p;
  Ipv4Packet ip;
  ip.src = Ipv4Address(10, 0, 0, 5);
  ip.dst = Ipv4Address(192, 168, 1, 5);
  p.ipv4 = ip;
  EXPECT_TRUE(is_private_to_private(p));
  ip.dst = Ipv4Address(1, 1, 1, 1);
  p.ipv4 = ip;
  EXPECT_FALSE(is_private_to_private(p));
}

// -------------------------------------------------------------------- Flow

Packet udp_packet(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                  std::uint16_t dport, std::string_view payload,
                  MacAddress src_mac = mac_n(1), MacAddress dst_mac = mac_n(2)) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.payload = Bytes(64);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  p.ipv4 = ip;
  UdpDatagram u;
  u.src_port = port(sport);
  u.dst_port = port(dport);
  u.payload = bytes_of(payload);
  p.udp = u;
  return p;
}

TEST(FlowTable, GroupsBidirectionalTraffic) {
  FlowTable table;
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  // Named locals: the flow records payload views into these packets, so
  // they must outlive the table reads below (DESIGN.md §10).
  const Packet req = udp_packet(a, 5000, b, 80, "req");
  const Packet res = udp_packet(b, 80, a, 5000, "res");
  const Packet req2 = udp_packet(a, 5000, b, 80, "req2");
  table.add(SimTime::from_ms(0), req);
  table.add(SimTime::from_ms(10), res);
  table.add(SimTime::from_ms(20), req2);
  ASSERT_EQ(table.flows().size(), 1u);
  const Flow& flow = table.flows()[0];
  EXPECT_EQ(flow.key.client_ip, a);
  EXPECT_EQ(flow.key.server_port, port(80));
  ASSERT_EQ(flow.packets.size(), 3u);
  EXPECT_TRUE(flow.packets[0].from_client);
  EXPECT_FALSE(flow.packets[1].from_client);
  EXPECT_TRUE(flow.packets[2].from_client);
  EXPECT_EQ(string_of(flow.first_client_payload()), "req");
  EXPECT_EQ(string_of(flow.first_server_payload()), "res");
}

TEST(FlowTable, DistinctTuplesAreDistinctFlows) {
  FlowTable table;
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  const Packet x = udp_packet(a, 5000, b, 80, "x");
  const Packet y = udp_packet(a, 5001, b, 80, "y");
  const Packet z = udp_packet(a, 5000, b, 81, "z");
  table.add(SimTime{}, x);
  table.add(SimTime{}, y);
  table.add(SimTime{}, z);
  EXPECT_EQ(table.flows().size(), 3u);
}

TEST(FlowTable, IgnoresNonTransport) {
  FlowTable table;
  Packet arp;
  arp.arp = ArpPacket{};
  table.add(SimTime{}, arp);
  EXPECT_TRUE(table.flows().empty());
  EXPECT_EQ(table.packet_count(), 0u);
}

TEST(FlowTable, TimesAndBytes) {
  FlowTable table;
  const Ipv4Address a(192, 168, 10, 5), b(192, 168, 10, 6);
  const Packet first = udp_packet(a, 1, b, 2, "abc");
  const Packet second = udp_packet(a, 1, b, 2, "defg");
  table.add(SimTime::from_seconds(1), first);
  table.add(SimTime::from_seconds(9), second);
  const Flow& flow = table.flows()[0];
  EXPECT_EQ(flow.first_seen(), SimTime::from_seconds(1));
  EXPECT_EQ(flow.last_seen(), SimTime::from_seconds(9));
  EXPECT_EQ(flow.byte_count(), 2 * (64u + 14u));
}

// --------------------------------------------------------------- arpspoof

TEST(ArpSpoof, InterceptsAndForwardsVictimTraffic) {
  // IoT Inspector's §3.3 vantage: a plain LAN host observing unicast
  // device-to-device traffic via ARP cache poisoning, without breaking it.
  Lan lan;
  Host a(lan.net, mac_n(10), "victim-a");
  Host b(lan.net, mac_n(11), "victim-b");
  Host inspector(lan.net, mac_n(12), "inspector");
  a.set_static_ip(Ipv4Address(192, 168, 10, 21));
  b.set_static_ip(Ipv4Address(192, 168, 10, 22));
  inspector.set_static_ip(Ipv4Address(192, 168, 10, 23));

  ArpSpoofer spoofer(inspector);
  spoofer.add_victim({a.ip(), a.mac()});
  spoofer.add_victim({b.ip(), b.mac()});
  spoofer.start();
  lan.settle(2);

  // The victims' caches are poisoned: each maps the peer to the inspector.
  EXPECT_EQ(a.arp_lookup(b.ip()), inspector.mac());
  EXPECT_EQ(b.arp_lookup(a.ip()), inspector.mac());

  // a -> b traffic still arrives (transparent forwarding)...
  std::string received;
  b.open_udp(7000, [&](Host&, const PacketView&, const UdpDatagramView& udp) {
    received = string_of(udp.payload);
  });
  a.send_udp(b.ip(), 6000, 7000, bytes_of("secret-reading"));
  lan.settle(2);
  EXPECT_EQ(received, "secret-reading");

  // ...and the inspector recorded it.
  ASSERT_FALSE(spoofer.intercepts().empty());
  const auto& intercept = spoofer.intercepts().front();
  EXPECT_EQ(intercept.original_src, a.mac());
  EXPECT_EQ(intercept.src_ip, a.ip());
  EXPECT_EQ(intercept.dst_ip, b.ip());
  EXPECT_TRUE(intercept.forwarded);
  EXPECT_GT(spoofer.poison_rounds(), 0u);
}

TEST(ArpSpoof, RepoisoningWinsBackTheCache) {
  Lan lan;
  Host a(lan.net, mac_n(10), "a");
  Host b(lan.net, mac_n(11), "b");
  Host inspector(lan.net, mac_n(12), "inspector");
  a.set_static_ip(Ipv4Address(192, 168, 10, 21));
  b.set_static_ip(Ipv4Address(192, 168, 10, 22));
  inspector.set_static_ip(Ipv4Address(192, 168, 10, 23));

  ArpSpoofer spoofer(inspector);
  spoofer.add_victim({a.ip(), a.mac()});
  spoofer.add_victim({b.ip(), b.mac()});
  spoofer.start(SimTime::from_seconds(5));
  lan.settle(1);
  EXPECT_EQ(a.arp_lookup(b.ip()), inspector.mac());

  // b broadcasts a genuine ARP request; a momentarily re-learns the truth.
  b.arp_request(Ipv4Address(192, 168, 10, 99));
  lan.settle(1);
  EXPECT_EQ(a.arp_lookup(b.ip()), b.mac());

  // The next poison round reasserts the lie.
  lan.settle(6);
  EXPECT_EQ(a.arp_lookup(b.ip()), inspector.mac());
}

TEST(ArpSpoof, StopEndsPoisoning) {
  Lan lan;
  Host a(lan.net, mac_n(10), "a");
  Host inspector(lan.net, mac_n(12), "inspector");
  a.set_static_ip(Ipv4Address(192, 168, 10, 21));
  inspector.set_static_ip(Ipv4Address(192, 168, 10, 23));
  ArpSpoofer spoofer(inspector);
  spoofer.add_victim({a.ip(), a.mac()});
  spoofer.add_victim({Ipv4Address(192, 168, 10, 22), mac_n(11)});
  spoofer.start(SimTime::from_seconds(2));
  lan.settle(5);
  const std::size_t rounds = spoofer.poison_rounds();
  spoofer.stop();
  lan.settle(10);
  EXPECT_EQ(spoofer.poison_rounds(), rounds);
}

}  // namespace
}  // namespace roomnet
