// Tests for the simulation substrate: event loop, switch, host stacks
// (ARP, DHCP, UDP, TCP), mDNS and SSDP endpoints.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/mdns.hpp"
#include "sim/network.hpp"
#include "sim/ssdp.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) { return MacAddress::from_u64(0x02a000000000ull | n); }

struct Lan {
  EventLoop loop;
  Switch net{loop};
  Router router{net, mac_n(1), Ipv4Address(192, 168, 10, 1)};

  void settle(double seconds = 5.0) {
    loop.run_until(loop.now() + SimTime::from_seconds(seconds));
  }
};

// --------------------------------------------------------------- EventLoop

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  loop.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  loop.run_until(SimTime::from_ms(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime::from_ms(100));
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(SimTime::from_ms(10), [&order, i] { order.push_back(i); });
  loop.run_until(SimTime::from_ms(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, RunUntilBoundary) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime::from_ms(50), [&] { ++fired; });
  loop.schedule_at(SimTime::from_ms(51), [&] { ++fired; });
  loop.run_until(SimTime::from_ms(50));
  EXPECT_EQ(fired, 1);  // inclusive of the boundary, exclusive beyond
  loop.run_until(SimTime::from_ms(60));
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PeriodicFiresRepeatedlyUntilCancelled) {
  EventLoop loop;
  int count = 0;
  const auto handle = loop.schedule_periodic(
      SimTime::from_seconds(1), SimTime::from_seconds(2), [&] { ++count; });
  loop.run_until(SimTime::from_seconds(10));  // fires at 1,3,5,7,9
  EXPECT_EQ(count, 5);
  loop.cancel_periodic(handle);
  loop.run_until(SimTime::from_seconds(20));
  EXPECT_EQ(count, 5);
}

TEST(EventLoop, CancelledPeriodicBookkeepingIsCompacted) {
  // Regression: cancel_periodic used to accumulate cancelled handles forever;
  // the set must shrink back to empty once the dropped events are reached.
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    const auto handle = loop.schedule_periodic(
        SimTime::from_ms(1), SimTime::from_ms(5), [&] { ++fired; });
    loop.run_until(loop.now() + SimTime::from_ms(2));  // fires exactly once
    loop.cancel_periodic(handle);
  }
  EXPECT_EQ(fired, 100);
  // Steady state: entries are erased as the loop passes their drop points, so
  // only the last few cancellations are still tracked — not all 100.
  EXPECT_LE(loop.cancelled_pending(), 4u);
  loop.run_until(loop.now() + SimTime::from_seconds(1));
  EXPECT_EQ(fired, 100);                    // none fire after cancellation
  EXPECT_EQ(loop.cancelled_pending(), 0u);  // bookkeeping fully compacted
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, EventsScheduledDuringRunAreExecuted) {
  EventLoop loop;
  bool inner = false;
  loop.schedule_at(SimTime::from_ms(1), [&] {
    loop.schedule_in(SimTime::from_ms(1), [&] { inner = true; });
  });
  loop.run_until(SimTime::from_ms(10));
  EXPECT_TRUE(inner);
}

// ------------------------------------------------------------------ Switch

TEST(Switch, UnicastDeliversOnlyToTarget) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  Host c(lan.net, mac_n(4), "c");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  b.set_static_ip(Ipv4Address(192, 168, 10, 3));
  c.set_static_ip(Ipv4Address(192, 168, 10, 4));

  int b_count = 0, c_count = 0;
  b.packet_monitor = [&](Host&, const PacketView&) { ++b_count; };
  c.packet_monitor = [&](Host&, const PacketView&) { ++c_count; };

  // Prime ARP caches via a broadcast request/reply, then send unicast UDP.
  a.arp_request(b.ip());
  lan.settle(1);
  const int c_after_arp = c_count;  // c saw the broadcast request
  a.send_udp(b.ip(), 1234, 5678, bytes_of("hello"));
  lan.settle(1);
  EXPECT_GT(b_count, 0);
  EXPECT_EQ(c_count, c_after_arp);  // no unicast leakage to c
}

TEST(Switch, BroadcastFloodsToAll) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  Host c(lan.net, mac_n(4), "c");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  int b_arp = 0, c_arp = 0;
  b.packet_monitor = [&](Host&, const PacketView& p) { b_arp += p.arp.has_value(); };
  c.packet_monitor = [&](Host&, const PacketView& p) { c_arp += p.arp.has_value(); };
  a.arp_request(Ipv4Address(192, 168, 10, 99));
  lan.settle(1);
  EXPECT_EQ(b_arp, 1);
  EXPECT_EQ(c_arp, 1);
}

TEST(Switch, TapSeesEverything) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  int tapped = 0;
  lan.net.add_tap([&](SimTime, BytesView) { ++tapped; });
  a.arp_request(Ipv4Address(192, 168, 10, 50));
  a.send_udp(Ipv4Address(255, 255, 255, 255), 1, 2, bytes_of("x"));
  lan.settle(1);
  EXPECT_EQ(tapped, 2);
}

// --------------------------------------------------------------------- ARP

TEST(Arp, TargetedRequestAlwaysAnswered) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  b.set_static_ip(Ipv4Address(192, 168, 10, 3));
  b.responds_to_broadcast_arp = false;

  // Broadcast sweep: b stays silent.
  a.arp_request(b.ip());
  lan.settle(1);
  EXPECT_EQ(a.arp_lookup(b.ip()), std::nullopt);

  // Targeted request (sender already knows the MAC): b must answer.
  ArpPacket targeted;
  targeted.op = ArpOp::kRequest;
  targeted.sender_mac = a.mac();
  targeted.sender_ip = a.ip();
  targeted.target_mac = b.mac();
  targeted.target_ip = b.ip();
  EthernetFrame eth;
  eth.dst = b.mac();
  eth.src = a.mac();
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kArp);
  eth.payload = encode_arp(targeted);
  a.send_frame(encode_ethernet(eth));
  lan.settle(1);
  EXPECT_EQ(a.arp_lookup(b.ip()), b.mac());
}

TEST(Arp, SubnetScanReachesAllHosts) {
  Lan lan;
  Host scanner(lan.net, mac_n(2), "scanner");
  scanner.set_static_ip(Ipv4Address(192, 168, 10, 2));
  Host victim(lan.net, mac_n(3), "victim");
  victim.set_static_ip(Ipv4Address(192, 168, 10, 200));
  scanner.arp_scan_subnet();
  lan.settle(10);
  EXPECT_EQ(scanner.arp_lookup(victim.ip()), victim.mac());
  // And the victim learned the scanner too (gratuitous cache insert).
  EXPECT_EQ(victim.arp_lookup(scanner.ip()), scanner.mac());
}

// -------------------------------------------------------------------- DHCP

TEST(Dhcp, ClientAcquiresLeaseAndExposesHostname) {
  Lan lan;
  Host dev(lan.net, mac_n(5), "ring-chime");
  bool acquired = false;
  dev.on_ip_acquired = [&](Host&) { acquired = true; };

  std::optional<std::string> seen_hostname;
  lan.net.add_tap([&](SimTime, BytesView frame) {
    const auto p = decode_frame(frame);
    if (!p || !p->udp || value(p->udp->dst_port) != kDhcpServerPort) return;
    const auto msg = decode_dhcp(BytesView(p->udp->payload));
    if (msg && msg->hostname()) seen_hostname = msg->hostname();
  });

  dev.start_dhcp("Ring-Chime-02a000000005", "udhcp 1.19", {1, 3, 6, 12});
  lan.settle(5);
  EXPECT_TRUE(acquired);
  EXPECT_TRUE(dev.has_ip());
  EXPECT_TRUE(dev.ip().in_subnet(Ipv4Address(192, 168, 10, 0), 24));
  ASSERT_TRUE(seen_hostname.has_value());
  EXPECT_EQ(*seen_hostname, "Ring-Chime-02a000000005");
  // The router recorded the lease.
  EXPECT_EQ(lan.router.leases().at(dev.mac()), dev.ip());
}

TEST(Dhcp, TwoClientsGetDistinctAddresses) {
  Lan lan;
  Host a(lan.net, mac_n(6), "a");
  Host b(lan.net, mac_n(7), "b");
  a.start_dhcp("a", "", {});
  b.start_dhcp("b", "", {});
  lan.settle(5);
  ASSERT_TRUE(a.has_ip());
  ASSERT_TRUE(b.has_ip());
  EXPECT_NE(a.ip(), b.ip());
}

// --------------------------------------------------------------------- UDP

TEST(Udp, HandlerReceivesDatagram) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  b.set_static_ip(Ipv4Address(192, 168, 10, 3));
  std::string got;
  b.open_udp(7777, [&](Host&, const PacketView&, const UdpDatagramView& udp) {
    got = string_of(udp.payload);
  });
  a.send_udp(b.ip(), 1111, 7777, bytes_of("ping!"));
  lan.settle(2);
  EXPECT_EQ(got, "ping!");
}

TEST(Udp, MulticastReachesGroupListeners) {
  Lan lan;
  Host sender(lan.net, mac_n(2), "s");
  Host listener(lan.net, mac_n(3), "l");
  sender.set_static_ip(Ipv4Address(192, 168, 10, 2));
  listener.set_static_ip(Ipv4Address(192, 168, 10, 3));
  int got = 0;
  listener.open_udp(kSsdpPort,
                    [&](Host&, const PacketView&, const UdpDatagramView&) { ++got; });
  sender.send_udp(kSsdpGroupV4, 5000, kSsdpPort, bytes_of("M-SEARCH..."));
  lan.settle(1);
  EXPECT_EQ(got, 1);
}

TEST(Udp, Ipv6LinkLocalDelivery) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  int got = 0;
  b.open_udp(kMdnsPort, [&](Host&, const PacketView& p, const UdpDatagramView&) {
    got += p.ipv6.has_value();
  });
  a.send_udp_v6(Ipv6Address::mdns_group(), kMdnsPort, kMdnsPort, bytes_of("q"));
  lan.settle(1);
  EXPECT_EQ(got, 1);
}

// --------------------------------------------------------------------- TCP

TEST(Tcp, HandshakeDataAndClose) {
  Lan lan;
  Host client(lan.net, mac_n(2), "client");
  Host server(lan.net, mac_n(3), "server");
  client.set_static_ip(Ipv4Address(192, 168, 10, 2));
  server.set_static_ip(Ipv4Address(192, 168, 10, 3));

  std::string server_got, client_got;
  server.listen_tcp(8080, [&](Host&, TcpConnection& conn) {
    conn.on_data = [&](TcpConnection& c, BytesView data) {
      server_got = string_of(data);
      c.send(bytes_of("pong"));
      c.close();
    };
  });

  bool established = false, closed = false;
  auto& conn = client.connect_tcp(server.ip(), 8080);
  conn.on_established = [&](TcpConnection& c) {
    established = true;
    c.send(bytes_of("ping"));
  };
  conn.on_data = [&](TcpConnection&, BytesView data) { client_got = string_of(data); };
  conn.on_close = [&](TcpConnection&) { closed = true; };

  lan.settle(5);
  EXPECT_TRUE(established);
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
  EXPECT_TRUE(closed);
}

TEST(Tcp, ConnectionRefusedOnClosedPort) {
  Lan lan;
  Host client(lan.net, mac_n(2), "client");
  Host server(lan.net, mac_n(3), "server");
  client.set_static_ip(Ipv4Address(192, 168, 10, 2));
  server.set_static_ip(Ipv4Address(192, 168, 10, 3));
  bool refused = false;
  auto& conn = client.connect_tcp(server.ip(), 9999);
  conn.on_refused = [&] { refused = true; };
  lan.settle(2);
  EXPECT_TRUE(refused);
}

TEST(Tcp, SilentDropWhenRstDisabled) {
  Lan lan;
  Host client(lan.net, mac_n(2), "client");
  Host server(lan.net, mac_n(3), "server");
  client.set_static_ip(Ipv4Address(192, 168, 10, 2));
  server.set_static_ip(Ipv4Address(192, 168, 10, 3));
  server.rst_on_closed_tcp = false;
  bool refused = false, established = false;
  auto& conn = client.connect_tcp(server.ip(), 9999);
  conn.on_refused = [&] { refused = true; };
  conn.on_established = [&](TcpConnection&) { established = true; };
  lan.settle(2);
  EXPECT_FALSE(refused);
  EXPECT_FALSE(established);
}

TEST(Tcp, SynScanObservesSynAck) {
  // A raw SYN (no connection state) to an open port must elicit SYN-ACK.
  Lan lan;
  Host scanner(lan.net, mac_n(2), "scanner");
  Host target(lan.net, mac_n(3), "target");
  scanner.set_static_ip(Ipv4Address(192, 168, 10, 2));
  target.set_static_ip(Ipv4Address(192, 168, 10, 3));
  target.listen_tcp(80, [](Host&, TcpConnection&) {});

  bool got_synack = false, got_rst = false;
  scanner.packet_monitor = [&](Host&, const PacketView& p) {
    if (!p.tcp) return;
    if (p.tcp->flags.syn && p.tcp->flags.ack) got_synack = true;
    if (p.tcp->flags.rst) got_rst = true;
  };
  scanner.send_raw_tcp(target.ip(), 40000, 80, TcpFlags{.syn = true}, 1, 0);
  lan.settle(1);
  EXPECT_TRUE(got_synack);
  scanner.send_raw_tcp(target.ip(), 40001, 81, TcpFlags{.syn = true}, 1, 0);
  lan.settle(1);
  EXPECT_TRUE(got_rst);
}

TEST(Tcp, PingAndIpProtocolProbes) {
  Lan lan;
  Host a(lan.net, mac_n(2), "a");
  Host b(lan.net, mac_n(3), "b");
  a.set_static_ip(Ipv4Address(192, 168, 10, 2));
  b.set_static_ip(Ipv4Address(192, 168, 10, 3));
  b.extra_ip_protocols = {47};  // GRE "supported"

  int echo_replies = 0, proto_unreachable = 0, proto_ok = 0;
  a.packet_monitor = [&](Host&, const PacketView& p) {
    if (!p.icmp) return;
    if (p.icmp->type == 0 && p.icmp->code == 0) {
      // Both echo replies and supported-protocol markers are type 0.
      ++echo_replies;
      ++proto_ok;
    }
    if (p.icmp->type == 3 && p.icmp->code == 2) ++proto_unreachable;
  };
  a.send_icmp_echo(b.ip());
  lan.settle(1);
  EXPECT_EQ(echo_replies, 1);

  a.send_raw_ip(b.ip(), 47, bytes_of("gre?"));
  a.send_raw_ip(b.ip(), 132, bytes_of("sctp?"));
  lan.settle(1);
  EXPECT_EQ(proto_unreachable, 1);
  EXPECT_GE(proto_ok, 2);
}

// -------------------------------------------------------------------- mDNS

TEST(Mdns, QueryGetsMulticastAnswerWithServiceRecords) {
  Lan lan;
  Host hue(lan.net, mac_n(2), "philips-hue");
  Host phone(lan.net, mac_n(3), "phone");
  hue.set_static_ip(Ipv4Address(192, 168, 10, 12));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));

  MdnsEndpoint hue_mdns(hue);
  hue_mdns.set_hostname("Philips-hue.local");
  hue_mdns.add_service({.instance = "Philips Hue - 685F61",
                        .service_type = "_hue._tcp.local",
                        .port = 443,
                        .txt = {"bridgeid=001788fffe685f61"}});

  MdnsEndpoint phone_mdns(phone);
  std::optional<DnsMessage> answer;
  phone_mdns.on_message = [&](const PacketView&, const DnsMessage& msg) {
    if (msg.is_response) answer = msg;
  };
  phone_mdns.query("_hue._tcp.local");
  lan.settle(3);
  ASSERT_TRUE(answer.has_value());
  ASSERT_FALSE(answer->answers.empty());
  const auto ptr = answer->answers[0].ptr();
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->labels[0], "Philips Hue - 685F61");
  // SRV target resolves to the A record in additionals.
  ASSERT_FALSE(answer->additional.empty());
  EXPECT_EQ(answer->additional[0].a(), hue.ip());
}

TEST(Mdns, NonMatchingServiceTypeIgnored) {
  Lan lan;
  Host hue(lan.net, mac_n(2), "hue");
  Host phone(lan.net, mac_n(3), "phone");
  hue.set_static_ip(Ipv4Address(192, 168, 10, 12));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));
  MdnsEndpoint hue_mdns(hue);
  hue_mdns.add_service({.instance = "X", .service_type = "_hue._tcp.local"});
  MdnsEndpoint phone_mdns(phone);
  int responses = 0;
  phone_mdns.on_message = [&](const PacketView&, const DnsMessage& msg) {
    responses += msg.is_response;
  };
  phone_mdns.query("_airplay._tcp.local");
  lan.settle(3);
  EXPECT_EQ(responses, 0);
}

TEST(Mdns, UnicastResponsePolicy) {
  Lan lan;
  Host dev(lan.net, mac_n(2), "dev");
  Host phone(lan.net, mac_n(3), "phone");
  Host bystander(lan.net, mac_n(4), "bystander");
  dev.set_static_ip(Ipv4Address(192, 168, 10, 12));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));
  bystander.set_static_ip(Ipv4Address(192, 168, 10, 60));

  MdnsEndpoint dev_mdns(dev);
  dev_mdns.answer_multicast = false;
  dev_mdns.answer_unicast = true;
  dev_mdns.add_service({.instance = "Dev", .service_type = "_x._tcp.local"});

  MdnsEndpoint phone_mdns(phone);
  MdnsEndpoint bystander_mdns(bystander);
  int phone_responses = 0, bystander_responses = 0;
  phone_mdns.on_message = [&](const PacketView&, const DnsMessage& m) {
    phone_responses += m.is_response;
  };
  bystander_mdns.on_message = [&](const PacketView&, const DnsMessage& m) {
    bystander_responses += m.is_response;
  };
  phone_mdns.query("_x._tcp.local", /*unicast_response=*/true);
  lan.settle(3);
  EXPECT_EQ(phone_responses, 1);
  EXPECT_EQ(bystander_responses, 0);  // unicast reply bypassed the group
}

// -------------------------------------------------------------------- SSDP

TEST(Ssdp, MSearchAnsweredWhenPolicyAllows) {
  Lan lan;
  Host tv(lan.net, mac_n(2), "roku-tv");
  Host phone(lan.net, mac_n(3), "phone");
  tv.set_static_ip(Ipv4Address(192, 168, 10, 30));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));

  SsdpEndpoint tv_ssdp(tv);
  tv_ssdp.respond_to_msearch = true;
  UpnpDeviceDescription desc;
  desc.friendly_name = "Roku 3 - Jane's Room";
  desc.udn = "uuid:296f0ed3-af44-4f44-8a7f-02a000000002";
  tv_ssdp.set_description(desc);

  SsdpEndpoint phone_ssdp(phone);
  std::optional<SsdpMessage> response;
  phone_ssdp.on_message = [&](const PacketView&, const SsdpMessage& m) {
    if (m.kind == SsdpKind::kResponse) response = m;
  };
  phone_ssdp.msearch("ssdp:all");
  lan.settle(3);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->usn.find("uuid:296f0ed3"), std::string::npos);
  EXPECT_NE(response->location.find("192.168.10.30"), std::string::npos);
}

TEST(Ssdp, SilentWhenPolicyForbids) {
  Lan lan;
  Host dev(lan.net, mac_n(2), "echo");
  Host phone(lan.net, mac_n(3), "phone");
  dev.set_static_ip(Ipv4Address(192, 168, 10, 30));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));
  SsdpEndpoint dev_ssdp(dev);  // respond_to_msearch defaults to false
  SsdpEndpoint phone_ssdp(phone);
  int responses = 0;
  phone_ssdp.on_message = [&](const PacketView&, const SsdpMessage& m) {
    responses += m.kind == SsdpKind::kResponse;
  };
  phone_ssdp.msearch("ssdp:all");
  lan.settle(3);
  EXPECT_EQ(responses, 0);
}

TEST(Ssdp, DescriptionXmlServedOverHttp) {
  Lan lan;
  Host tv(lan.net, mac_n(2), "tv");
  Host phone(lan.net, mac_n(3), "phone");
  tv.set_static_ip(Ipv4Address(192, 168, 10, 30));
  phone.set_static_ip(Ipv4Address(192, 168, 10, 50));
  SsdpEndpoint tv_ssdp(tv);
  UpnpDeviceDescription desc;
  desc.friendly_name = "FireTV-Living";
  desc.serial_number = tv.mac().to_string();
  desc.udn = "uuid:deadbeef-0000-1000-8000-02a000000002";
  tv_ssdp.set_description(desc, 49152);

  std::string fetched;
  auto& conn = phone.connect_tcp(tv.ip(), 49152);
  conn.on_established = [](TcpConnection& c) {
    HttpRequest req;
    req.target = "/description.xml";
    c.send(encode_http_request(req));
  };
  conn.on_data = [&](TcpConnection&, BytesView data) {
    const auto res = decode_http_response(data);
    if (res) fetched = string_of(BytesView(res->body));
  };
  lan.settle(5);
  const auto parsed = UpnpDeviceDescription::from_xml(fetched);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->friendly_name, "FireTV-Living");
  EXPECT_EQ(parsed->serial_number, tv.mac().to_string());
}

TEST(Ssdp, NotifyAliveCarriesUsnAndLocation) {
  Lan lan;
  Host dev(lan.net, mac_n(2), "dev");
  Host listener(lan.net, mac_n(3), "listener");
  dev.set_static_ip(Ipv4Address(192, 168, 10, 30));
  listener.set_static_ip(Ipv4Address(192, 168, 10, 50));
  SsdpEndpoint dev_ssdp(dev);
  UpnpDeviceDescription desc;
  desc.udn = "uuid:11111111-2222-3333-4444-555555555555";
  dev_ssdp.set_description(desc);
  SsdpEndpoint listener_ssdp(listener);
  std::optional<SsdpMessage> seen;
  listener_ssdp.on_message = [&](const PacketView&, const SsdpMessage& m) {
    if (m.kind == SsdpKind::kNotify) seen = m;
  };
  dev_ssdp.notify_alive();
  lan.settle(2);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->nts, "ssdp:alive");
  EXPECT_NE(seen->usn.find(desc.udn), std::string::npos);
}

}  // namespace
}  // namespace roomnet
