// Tests for the household-fleet driver: per-household seed independence
// (household k is byte-identical alone vs inside a fleet, on a fresh or a
// well-used context), byte-identical fleet aggregates for any thread count
// and any shard size, batch/streaming row parity, flat per-household memory
// on recycled contexts, and the manifest's folding behavior.
#include <gtest/gtest.h>

#include <string>

#include "exec/task_pool.hpp"
#include "fleet/context.hpp"
#include "fleet/fleet.hpp"
#include "fleet/household.hpp"

namespace roomnet::fleet {
namespace {

FleetConfig small_fleet(std::uint64_t households) {
  FleetConfig config;
  config.seed = 42;
  config.households = households;
  return config;
}

TEST(FleetSeedIndependence, HouseholdAloneMatchesHouseholdInFleet) {
  FleetConfig config = small_fleet(1000);
  config.threads = 2;
  const FleetResults fleet = run_fleet(config);
  ASSERT_EQ(fleet.household_hashes.size(), 1000u);

  // Household 517 recomputed standalone, on a factory-fresh context.
  HouseholdContext fresh(config.household.cache);
  const HouseholdResult alone =
      run_household(config.household, config.seed, 517, fresh);
  EXPECT_EQ(alone.sha256, fleet.household_hashes[517]);
  EXPECT_EQ(alone.seed, household_seed(config.seed, 517));

  // And on a context another household just dirtied: begin_household() must
  // erase every trace (lease order inside a fleet is scheduling-dependent).
  HouseholdContext used(config.household.cache);
  (void)run_household(config.household, config.seed, 3, used);
  const HouseholdResult recycled =
      run_household(config.household, config.seed, 517, used);
  EXPECT_EQ(recycled.sha256, alone.sha256);
}

TEST(FleetSeedIndependence, SeedsAreDistinctAcrossIndices) {
  EXPECT_NE(household_seed(42, 0), household_seed(42, 1));
  EXPECT_NE(household_seed(42, 0), household_seed(43, 0));
  // splitmix64 output, not the raw index: household 0 is fully mixed.
  EXPECT_NE(household_seed(42, 0), 42u);
}

TEST(FleetThreadInvariance, AggregatesAreByteIdenticalAcrossThreadCounts) {
  const FleetConfig base = small_fleet(200);
  std::string manifest_1, aggregates_1;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    FleetConfig config = base;
    config.threads = threads;
    exec::TaskPool pool(threads);
    const FleetResults results = run_fleet(config, pool);
    const std::string manifest = to_json(results.manifest);
    const std::string aggregates = to_json(results.aggregates);
    if (threads == 1) {
      manifest_1 = manifest;
      aggregates_1 = aggregates;
      continue;
    }
    EXPECT_EQ(manifest, manifest_1) << "threads=" << threads;
    EXPECT_EQ(aggregates, aggregates_1) << "threads=" << threads;
  }
}

TEST(FleetShardInvariance, ShardSizeNeverChangesResults) {
  FleetConfig config = small_fleet(150);
  config.threads = 4;
  std::string manifest_64;
  for (const std::size_t shard_size : {64u, 7u, 1u}) {
    config.shard_size = shard_size;
    const FleetResults results = run_fleet(config);
    const std::string manifest = to_json(results.manifest);
    if (shard_size == 64) {
      manifest_64 = manifest;
      continue;
    }
    EXPECT_EQ(manifest, manifest_64) << "shard_size=" << shard_size;
  }
}

TEST(FleetBatchStreamingParity, SameRowsAndAggregates) {
  FleetConfig streaming = small_fleet(200);
  streaming.threads = 2;
  FleetConfig batch = streaming;
  batch.household.mode = HouseholdMode::kBatch;

  const FleetResults a = run_fleet(streaming);
  const FleetResults b = run_fleet(batch);
  // The mode is result-determining in general (an armed memcap can evict),
  // so it lives in the config digest — but with the default non-evicting
  // cache the rows and aggregates must agree exactly.
  EXPECT_NE(a.manifest.config_digest, b.manifest.config_digest);
  EXPECT_EQ(a.manifest.households_root, b.manifest.households_root);
  EXPECT_EQ(a.manifest.aggregates_sha256, b.manifest.aggregates_sha256);
  EXPECT_EQ(to_json(a.aggregates), to_json(b.aggregates));
}

TEST(FleetFlatMemory, RecycledContextArenasPlateau) {
  // Batch mode exercises the capture arenas hardest: every household
  // materializes its full capture in the context's store.
  HouseholdConfig config;
  config.mode = HouseholdMode::kBatch;
  HouseholdContext ctx(config.cache);
  for (std::uint64_t index = 0; index < 50; ++index)
    (void)run_household(config, 42, index, ctx);
  const std::size_t capacity_50 = ctx.store.arena().capacity();
  const std::size_t row_chunks_50 = ctx.store.row_chunk_count();
  ASSERT_GT(capacity_50, 0u);

  for (std::uint64_t index = 50; index < 250; ++index)
    (void)run_household(config, 42, index, ctx);
  // 5x the households must not mean 5x the arena: capacity is pinned at the
  // largest household's high-water mark, not the fleet's sum. The loose 2x
  // bound only allows a later household to raise the high water itself.
  EXPECT_LE(ctx.store.arena().capacity(), 2 * capacity_50);
  EXPECT_LE(ctx.store.row_chunk_count(), 2 * row_chunks_50);
  EXPECT_EQ(ctx.households_served, 250u);
}

TEST(FleetFlatMemory, MemcappedStreamingFleetStaysUnderBudget) {
  FleetConfig config = small_fleet(100);
  config.threads = 1;
  config.household.cache.memcap_bytes = 64 * 1024;
  HouseholdContext ctx(config.household.cache);
  for (std::uint64_t index = 0; index < 100; ++index) {
    (void)run_household(config.household, config.seed, index, ctx);
    // One flow's worth of slack: the cache evicts back under the cap after
    // the add that crossed it.
    EXPECT_LE(ctx.cache.stats().peak_bytes,
              config.household.cache.memcap_bytes + 4096)
        << "household " << index;
  }
  // A memcap'd fleet still runs end to end and stays self-consistent.
  const FleetResults results = run_fleet(config);
  EXPECT_EQ(results.aggregates.households, 100u);
  EXPECT_EQ(results.household_hashes.size(), 100u);
}

TEST(FleetManifestFolding, RootTracksSeedAndRerunsAreStable) {
  const FleetConfig config = small_fleet(40);
  const FleetResults a = run_fleet(config);
  const FleetResults b = run_fleet(config);
  EXPECT_EQ(a.manifest.result_digest, b.manifest.result_digest);
  EXPECT_EQ(a.manifest.households_root, b.manifest.households_root);
  EXPECT_EQ(a.manifest.households, 40u);
  EXPECT_EQ(a.manifest.config_digest, fleet_config_digest(config));

  FleetConfig reseeded = config;
  reseeded.seed = 43;
  const FleetResults c = run_fleet(reseeded);
  EXPECT_NE(c.manifest.households_root, a.manifest.households_root);
  EXPECT_NE(c.manifest.result_digest, a.manifest.result_digest);

  // threads/shard_size are digest-excluded by contract.
  FleetConfig threaded = config;
  threaded.threads = 4;
  threaded.shard_size = 5;
  EXPECT_EQ(fleet_config_digest(threaded), fleet_config_digest(config));
}

TEST(FleetContextPool, LeasesRecycleInsteadOfAllocating) {
  ContextPool pool{FlowCacheConfig{}};
  {
    ContextPool::Lease first = pool.acquire();
    first.context().households_served = 7;
  }
  EXPECT_EQ(pool.contexts_created(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  {
    ContextPool::Lease second = pool.acquire();
    // Same object back, not a fresh one.
    EXPECT_EQ(second.context().households_served, 7u);
    // A second concurrent lease must be a new context.
    ContextPool::Lease third = pool.acquire();
    EXPECT_EQ(third.context().households_served, 0u);
  }
  EXPECT_EQ(pool.contexts_created(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(FleetSampling, HouseholdSizesRespectBoundsAndCoverTheRange) {
  HouseholdConfig config;
  Rng rng(1);
  std::size_t smallest = 99, largest = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t size = sample_household_size(rng, config);
    ASSERT_GE(size, config.min_devices);
    ASSERT_LE(size, config.max_devices);
    smallest = std::min(smallest, size);
    largest = std::max(largest, size);
  }
  EXPECT_EQ(smallest, 1u);
  EXPECT_EQ(largest, 8u);

  HouseholdConfig clamped;
  clamped.min_devices = 3;
  clamped.max_devices = 4;
  for (int i = 0; i < 200; ++i) {
    const std::size_t size = sample_household_size(rng, clamped);
    ASSERT_GE(size, 3u);
    ASSERT_LE(size, 4u);
  }
}

}  // namespace
}  // namespace roomnet::fleet
