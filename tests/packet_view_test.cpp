// Tests for the zero-copy packet hot path: the FrameStore arena, view-based
// frame decode (decode_frame_view ≡ decode_frame on valid AND malformed
// input), the as_view/materialize/rebase bridges, and the CaptureStore's
// SoA side index. See DESIGN.md §10 for the memory model under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "capture/capture_store.hpp"
#include "netcore/frame_store.hpp"
#include "telemetry/metrics.hpp"
#include "netcore/packet.hpp"
#include "netcore/packet_view.hpp"
#include "netcore/rng.hpp"

namespace roomnet {
namespace {

// ------------------------------------------------------------- FrameStore

TEST(FrameStore, AppendedViewsKeepTheirBytes) {
  FrameStore store;
  const Bytes a = bytes_of("first frame");
  const Bytes b = bytes_of("second frame, a bit longer");
  const BytesView va = store.append(BytesView(a));
  const BytesView vb = store.append(BytesView(b));
  EXPECT_EQ(string_of(va), "first frame");
  EXPECT_EQ(string_of(vb), "second frame, a bit longer");
  EXPECT_NE(va.data(), a.data());  // it is a copy, not an alias
  EXPECT_EQ(store.frame_count(), 2u);
  EXPECT_EQ(store.byte_count(), a.size() + b.size());
}

TEST(FrameStore, AddressesAreStableAcrossChunkGrowth) {
  // Small chunks force many chunk allocations; every previously returned
  // view must still read back its own bytes afterwards.
  FrameStore store(/*chunk_size=*/64);
  Rng rng(7);
  std::vector<Bytes> originals;
  std::vector<BytesView> views;
  for (int i = 0; i < 200; ++i) {
    originals.push_back(rng.bytes(static_cast<std::size_t>(1 + i % 48)));
    views.push_back(store.append(BytesView(originals.back())));
  }
  ASSERT_GT(store.chunk_count(), 1u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(to_hex(views[i]), to_hex(BytesView(originals[i]))) << "frame " << i;
  }
}

TEST(FrameStore, OversizeFrameDoesNotDisturbActiveChunk) {
  FrameStore store(/*chunk_size=*/32);
  const Bytes small1 = bytes_of("abc");
  const Bytes huge(100, 0xee);  // > chunk size: dedicated chunk
  const Bytes small2 = bytes_of("def");
  const BytesView v1 = store.append(BytesView(small1));
  const BytesView vh = store.append(BytesView(huge));
  const BytesView v2 = store.append(BytesView(small2));
  EXPECT_EQ(string_of(v1), "abc");
  EXPECT_EQ(vh.size(), 100u);
  EXPECT_TRUE(std::all_of(vh.begin(), vh.end(),
                          [](std::uint8_t x) { return x == 0xee; }));
  EXPECT_EQ(string_of(v2), "def");
  // small2 packed into the same chunk as small1, not a fresh one.
  EXPECT_EQ(store.chunk_count(), 2u);
}

TEST(FrameStore, ResetRetainsChunksAndRefillsWithoutAllocating) {
  FrameStore store(/*chunk_size=*/64);
  Rng rng(11);
  std::vector<BytesView> first_fill;
  for (int i = 0; i < 40; ++i)
    first_fill.push_back(store.append(BytesView(rng.bytes(16))));
  const std::size_t chunks_before = store.chunk_count();
  const std::size_t capacity_before = store.capacity();
  const std::uint8_t* first_frame_addr = first_fill.front().data();
  ASSERT_GT(chunks_before, 1u);

  store.reset();
  EXPECT_EQ(store.frame_count(), 0u);
  EXPECT_EQ(store.byte_count(), 0u);
  // Capacity is retained, not released: that's the keep in keep-capacity.
  EXPECT_EQ(store.capacity(), capacity_before);
  EXPECT_EQ(store.chunk_count(), chunks_before);

  // The second fill overwrites the retained chunks in order — the very
  // first append lands at the very first chunk's base, and an identical
  // fill ends with zero chunk churn.
  const BytesView refilled = store.append(BytesView(rng.bytes(16)));
  EXPECT_EQ(refilled.data(), first_frame_addr);
  for (int i = 1; i < 40; ++i) (void)store.append(BytesView(rng.bytes(16)));
  EXPECT_EQ(store.chunk_count(), chunks_before);
  EXPECT_EQ(store.capacity(), capacity_before);
}

TEST(FrameStore, ResetReleasesOversizeChunks) {
  FrameStore store(/*chunk_size=*/32);
  (void)store.append(BytesView(Bytes(8, 0x11)));
  (void)store.append(BytesView(Bytes(100, 0xee)));  // dedicated chunk
  ASSERT_EQ(store.large_chunk_count(), 1u);
  const std::size_t fixed_capacity = store.capacity() - 100;

  store.reset();
  // Oversize chunks are frame-specific and rarely reusable: dropped.
  EXPECT_EQ(store.large_chunk_count(), 0u);
  EXPECT_EQ(store.capacity(), fixed_capacity);
  EXPECT_EQ(store.chunk_count(), 1u);
}

TEST(FrameStore, EmptyAppendIsANoop) {
  FrameStore store;
  const BytesView v = store.append({});
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(store.frame_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 0u);
}

// ----------------------------------------------- frame builders for decode

Bytes udp4_frame(std::uint16_t sport, std::uint16_t dport,
                 const std::string& payload) {
  UdpDatagram u;
  u.src_port = port(sport);
  u.dst_port = port(dport);
  u.payload = bytes_of(payload);
  const Ipv4Address src(192, 168, 1, 7), dst(192, 168, 1, 20);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.payload = encode_udp_v4(u, src, dst);
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(0x0a0b0c0d0e0full);
  eth.src = MacAddress::from_u64(0x0102030405ull);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);
  return encode_ethernet(eth);
}

Bytes tcp4_frame(const std::string& payload) {
  TcpSegment t;
  t.src_port = port(40001);
  t.dst_port = port(80);
  t.seq = 1000;
  t.ack = 2000;
  t.flags.psh = true;
  t.flags.ack = true;
  t.payload = bytes_of(payload);
  const Ipv4Address src(192, 168, 1, 8), dst(192, 168, 1, 9);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.payload = encode_tcp_v4(t, src, dst);
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(6);
  eth.src = MacAddress::from_u64(5);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);
  return encode_ethernet(eth);
}

Bytes arp_frame() {
  ArpPacket a;
  a.op = ArpOp::kRequest;
  a.sender_mac = MacAddress::from_u64(11);
  a.sender_ip = Ipv4Address(192, 168, 1, 1);
  a.target_ip = Ipv4Address(192, 168, 1, 2);
  EthernetFrame eth;
  eth.dst = MacAddress::kBroadcast;
  eth.src = a.sender_mac;
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kArp);
  eth.payload = encode_arp(a);
  return encode_ethernet(eth);
}

Bytes llc_frame() {
  LlcXidFrame f;
  f.is_xid = true;
  f.info = bytes_of("x");
  EthernetFrame eth;
  eth.dst = MacAddress::kBroadcast;
  eth.src = MacAddress::from_u64(2);
  eth.payload = encode_llc_xid(f);
  eth.ethertype = static_cast<std::uint16_t>(eth.payload.size());  // length
  return encode_ethernet(eth);
}

Bytes eapol_frame() {
  EapolFrame f;
  f.type = EapolType::kKey;
  f.body = bytes_of("key-material");
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(1);
  eth.src = MacAddress::from_u64(2);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kEapol);
  eth.payload = encode_eapol(f);
  return encode_ethernet(eth);
}

Bytes icmp_frame() {
  IcmpMessage m;
  m.type = 3;
  m.code = 3;
  m.body = bytes_of("embedded");
  Ipv4Packet ip;
  ip.src = Ipv4Address(192, 168, 1, 3);
  ip.dst = Ipv4Address(192, 168, 1, 4);
  ip.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  ip.payload = encode_icmp(m);
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(3);
  eth.src = MacAddress::from_u64(4);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.payload = encode_ipv4(ip);
  return encode_ethernet(eth);
}

Bytes udp6_frame(const std::string& payload) {
  UdpDatagram u;
  u.src_port = port(5353);
  u.dst_port = port(5353);
  u.payload = bytes_of(payload);
  const Ipv6Address src = Ipv6Address::link_local_from_mac(MacAddress::from_u64(9));
  const Ipv6Address dst = Ipv6Address::mdns_group();
  Ipv6Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.next_header = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.payload = encode_udp_v6(u, src, dst);
  EthernetFrame eth;
  eth.dst = MacAddress::from_u64(0x333300fb);
  eth.src = MacAddress::from_u64(9);
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv6);
  eth.payload = encode_ipv6(ip);
  return encode_ethernet(eth);
}

std::vector<Bytes> sample_frames() {
  return {udp4_frame(5353, 5353, "mdns-ish payload"),
          udp4_frame(49152, 6667, ""),
          tcp4_frame("GET /description.xml HTTP/1.1\r\n\r\n"),
          tcp4_frame(""),
          arp_frame(),
          llc_frame(),
          eapol_frame(),
          icmp_frame(),
          udp6_frame("v6 traffic")};
}

// ------------------------------------- Packet ≡ PacketView field equality

void expect_same_bytes(const Bytes& owned, BytesView view,
                       const std::string& what) {
  EXPECT_EQ(to_hex(BytesView(owned)), to_hex(view)) << what;
}

/// Asserts that an owning decode and a view decode agree member-for-member.
void expect_equivalent(const Packet& p, const PacketView& v) {
  EXPECT_EQ(p.eth.dst, v.eth.dst);
  EXPECT_EQ(p.eth.src, v.eth.src);
  EXPECT_EQ(p.eth.ethertype, v.eth.ethertype);
  expect_same_bytes(p.eth.payload, v.eth.payload, "eth.payload");

  ASSERT_EQ(p.arp.has_value(), v.arp.has_value());
  if (p.arp) {
    EXPECT_EQ(p.arp->op, v.arp->op);
    EXPECT_EQ(p.arp->sender_mac, v.arp->sender_mac);
    EXPECT_EQ(p.arp->sender_ip, v.arp->sender_ip);
    EXPECT_EQ(p.arp->target_mac, v.arp->target_mac);
    EXPECT_EQ(p.arp->target_ip, v.arp->target_ip);
  }
  ASSERT_EQ(p.llc.has_value(), v.llc.has_value());
  if (p.llc) {
    EXPECT_EQ(p.llc->dsap, v.llc->dsap);
    EXPECT_EQ(p.llc->ssap, v.llc->ssap);
    EXPECT_EQ(p.llc->is_xid, v.llc->is_xid);
    expect_same_bytes(p.llc->info, v.llc->info, "llc.info");
  }
  ASSERT_EQ(p.eapol.has_value(), v.eapol.has_value());
  if (p.eapol) {
    EXPECT_EQ(p.eapol->version, v.eapol->version);
    EXPECT_EQ(p.eapol->type, v.eapol->type);
    expect_same_bytes(p.eapol->body, v.eapol->body, "eapol.body");
  }
  ASSERT_EQ(p.ipv4.has_value(), v.ipv4.has_value());
  if (p.ipv4) {
    EXPECT_EQ(p.ipv4->src, v.ipv4->src);
    EXPECT_EQ(p.ipv4->dst, v.ipv4->dst);
    EXPECT_EQ(p.ipv4->protocol, v.ipv4->protocol);
    EXPECT_EQ(p.ipv4->ttl, v.ipv4->ttl);
    EXPECT_EQ(p.ipv4->identification, v.ipv4->identification);
    expect_same_bytes(p.ipv4->payload, v.ipv4->payload, "ipv4.payload");
  }
  ASSERT_EQ(p.ipv6.has_value(), v.ipv6.has_value());
  if (p.ipv6) {
    EXPECT_EQ(p.ipv6->src, v.ipv6->src);
    EXPECT_EQ(p.ipv6->dst, v.ipv6->dst);
    EXPECT_EQ(p.ipv6->next_header, v.ipv6->next_header);
    EXPECT_EQ(p.ipv6->hop_limit, v.ipv6->hop_limit);
    expect_same_bytes(p.ipv6->payload, v.ipv6->payload, "ipv6.payload");
  }
  ASSERT_EQ(p.udp.has_value(), v.udp.has_value());
  if (p.udp) {
    EXPECT_EQ(p.udp->src_port, v.udp->src_port);
    EXPECT_EQ(p.udp->dst_port, v.udp->dst_port);
    expect_same_bytes(p.udp->payload, v.udp->payload, "udp.payload");
  }
  ASSERT_EQ(p.tcp.has_value(), v.tcp.has_value());
  if (p.tcp) {
    EXPECT_EQ(p.tcp->src_port, v.tcp->src_port);
    EXPECT_EQ(p.tcp->dst_port, v.tcp->dst_port);
    EXPECT_EQ(p.tcp->seq, v.tcp->seq);
    EXPECT_EQ(p.tcp->ack, v.tcp->ack);
    EXPECT_EQ(p.tcp->flags.to_byte(), v.tcp->flags.to_byte());
    EXPECT_EQ(p.tcp->window, v.tcp->window);
    expect_same_bytes(p.tcp->payload, v.tcp->payload, "tcp.payload");
  }
  ASSERT_EQ(p.icmp.has_value(), v.icmp.has_value());
  if (p.icmp) {
    EXPECT_EQ(p.icmp->type, v.icmp->type);
    EXPECT_EQ(p.icmp->code, v.icmp->code);
    expect_same_bytes(p.icmp->body, v.icmp->body, "icmp.body");
  }
  ASSERT_EQ(p.icmpv6.has_value(), v.icmpv6.has_value());
  if (p.icmpv6) {
    EXPECT_EQ(p.icmpv6->type, v.icmpv6->type);
    EXPECT_EQ(p.icmpv6->code, v.icmpv6->code);
    EXPECT_EQ(p.icmpv6->target, v.icmpv6->target);
    EXPECT_EQ(p.icmpv6->link_layer_option, v.icmpv6->link_layer_option);
    expect_same_bytes(p.icmpv6->extra, v.icmpv6->extra, "icmpv6.extra");
  }
  ASSERT_EQ(p.igmp.has_value(), v.igmp.has_value());
  if (p.igmp) {
    EXPECT_EQ(p.igmp->type, v.igmp->type);
    EXPECT_EQ(p.igmp->group, v.igmp->group);
  }
}

/// Both decoders must agree on accept/reject, and on every field on accept.
void expect_decoders_agree(BytesView raw) {
  const auto owned = decode_frame(raw);
  const auto view = decode_frame_view(raw);
  ASSERT_EQ(owned.has_value(), view.has_value())
      << "decoders disagree on acceptance of " << to_hex(raw);
  if (owned) expect_equivalent(*owned, *view);
}

TEST(DecodeFrameView, AgreesWithOwningDecodeOnValidFrames) {
  for (const Bytes& frame : sample_frames()) {
    SCOPED_TRACE(to_hex(BytesView(frame)));
    expect_decoders_agree(BytesView(frame));
  }
}

TEST(DecodeFrameView, AgreesOnEveryTruncationOfValidFrames) {
  // Truncation sweeps the accept/reject boundary of every layer decoder:
  // both paths must fail (or degrade to a shallower parse) identically.
  for (const Bytes& frame : sample_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      SCOPED_TRACE("len=" + std::to_string(len));
      expect_decoders_agree(BytesView(frame.data(), len));
    }
  }
}

TEST(DecodeFrameView, AgreesOnMutatedFrames) {
  Rng rng(2026);
  const auto frames = sample_frames();
  for (int round = 0; round < 2000; ++round) {
    Bytes frame = frames[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(frames.size()) - 1))];
    const int flips = static_cast<int>(rng.range(1, 4));
    for (int i = 0; i < flips; ++i) {
      const auto at = static_cast<std::size_t>(
          rng.range(0, static_cast<std::int64_t>(frame.size()) - 1));
      frame[at] ^= static_cast<std::uint8_t>(rng.next_u64() | 1);
    }
    expect_decoders_agree(BytesView(frame));
  }
}

TEST(DecodeFrameView, AgreesOnRandomGarbage) {
  Rng rng(4242);
  for (int round = 0; round < 2000; ++round) {
    const Bytes noise = rng.bytes(static_cast<std::size_t>(rng.range(0, 120)));
    expect_decoders_agree(BytesView(noise));
  }
}

// ------------------------------------------- as_view / materialize / rebase

TEST(PacketViewBridges, AsViewAliasesAndMaterializeCopies) {
  const Bytes raw = udp4_frame(5000, 80, "hello");
  const auto packet = decode_frame(BytesView(raw));
  ASSERT_TRUE(packet.has_value());

  const PacketView alias = as_view(*packet);
  expect_equivalent(*packet, alias);
  // as_view aliases the packet's own buffers, not the wire bytes.
  ASSERT_TRUE(alias.udp.has_value());
  EXPECT_EQ(alias.udp->payload.data(), packet->udp->payload.data());

  const Packet copy = materialize(alias);
  expect_equivalent(copy, alias);
  EXPECT_NE(copy.udp->payload.data(), packet->udp->payload.data());
}

TEST(PacketViewBridges, RebaseRetargetsSlicesIntoArenaCopy) {
  const Bytes raw = tcp4_frame("rebase me");
  const auto view = decode_frame_view(BytesView(raw));
  ASSERT_TRUE(view.has_value());

  FrameStore arena;
  const BytesView stored = arena.append(BytesView(raw));
  const PacketView moved = rebase(*view, BytesView(raw), stored);

  // Same decoded content...
  const auto owned = decode_frame(BytesView(raw));
  ASSERT_TRUE(owned.has_value());
  expect_equivalent(*owned, moved);
  // ...but every slice now points inside the arena copy, not the original.
  ASSERT_TRUE(moved.tcp.has_value());
  const auto* begin = stored.data();
  const auto* end = stored.data() + stored.size();
  EXPECT_GE(moved.tcp->payload.data(), begin);
  EXPECT_LE(moved.tcp->payload.data() + moved.tcp->payload.size(), end);
  EXPECT_GE(moved.eth.payload.data(), begin);
  EXPECT_EQ(string_of(moved.tcp->payload), "rebase me");
}

// ------------------------------------------------------------ CaptureStore

TEST(CaptureStore, AppendBuildsSideIndexColumns) {
  CaptureStore store;
  const Bytes f1 = udp4_frame(5353, 5353, "mdns");
  const Bytes f2 = tcp4_frame("http body");
  const Bytes f3 = arp_frame();

  ASSERT_TRUE(store.append(SimTime::from_ms(1), BytesView(f1)).has_value());
  ASSERT_TRUE(store.append(SimTime::from_ms(2), BytesView(f2)).has_value());
  ASSERT_TRUE(store.append(SimTime::from_ms(3), BytesView(f3)).has_value());

  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.timestamp(0), SimTime::from_ms(1));
  EXPECT_EQ(store.timestamp(2), SimTime::from_ms(3));

  EXPECT_EQ(store.proto(0), WireProto::kUdp);
  EXPECT_EQ(store.proto(1), WireProto::kTcp);
  EXPECT_EQ(store.proto(2), WireProto::kArp);

  EXPECT_EQ(store.src_port(0), 5353);
  EXPECT_EQ(store.dst_port(0), 5353);
  EXPECT_EQ(store.src_port(1), 40001);
  EXPECT_EQ(store.dst_port(1), 80);
  EXPECT_EQ(store.src_port(2), 0);  // no transport layer
  EXPECT_EQ(store.dst_port(2), 0);

  EXPECT_EQ(string_of(store.payload(0)), "mdns");
  EXPECT_EQ(string_of(store.payload(1)), "http body");
  EXPECT_TRUE(store.payload(2).empty());

  EXPECT_EQ(store.src_mac(2), MacAddress::from_u64(11));
  EXPECT_EQ(store.dst_mac(2), MacAddress::kBroadcast);
  EXPECT_EQ(store.arena().frame_count(), 3u);
}

TEST(CaptureStore, StoredViewsPointIntoTheArena) {
  CaptureStore store;
  Bytes f = udp4_frame(1234, 80, "scribble");
  const std::optional<PacketView> stored = store.append(SimTime{}, BytesView(f));
  ASSERT_TRUE(stored.has_value());
  // Clobber the source buffer: the stored view must be unaffected because
  // append copied the frame into the arena.
  std::fill(f.begin(), f.end(), std::uint8_t{0});
  EXPECT_EQ(string_of(stored->app_payload()), "scribble");
  EXPECT_EQ(string_of(store.payload(0)), "scribble");
}

TEST(CaptureStore, RejectsUndecodableFrames) {
  CaptureStore store;
  const Bytes garbage = {0x01, 0x02, 0x03};
  EXPECT_FALSE(store.append(SimTime{}, BytesView(garbage)).has_value());
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.arena().frame_count(), 0u);
}

TEST(CaptureStore, PacketRowsSurviveHeavyGrowth) {
  // Arena frames and layer columns never move: every view returned by
  // append() — and every slice inside it — must stay valid and identical to
  // what packet(i) reassembles, however far the store grows.
  CaptureStore store;
  std::vector<std::string> payloads;
  std::vector<PacketView> stored;
  for (int i = 0; i < 2000; ++i) {
    payloads.push_back("payload-" + std::to_string(i));
    const Bytes f = udp4_frame(static_cast<std::uint16_t>(1024 + i), 80,
                               payloads.back());
    const auto appended = store.append(SimTime::from_ms(i), BytesView(f));
    ASSERT_TRUE(appended.has_value());
    stored.push_back(*appended);
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    // The view handed out at append time still reads the arena correctly...
    EXPECT_EQ(string_of(stored[i].app_payload()), payloads[i]);
    // ...and reassembly from the layer columns slices the same bytes.
    const PacketView row = store.packet(i);
    EXPECT_EQ(string_of(row.app_payload()), payloads[i]);
    EXPECT_EQ(row.udp->payload.data(), stored[i].udp->payload.data());
    EXPECT_EQ(store.src_port(i), 1024 + i);
  }
}

TEST(CaptureStore, ResetRecyclesColumnsAndArenaWithoutChurn) {
  CaptureStore store;
  const auto fill = [&store] {
    for (int i = 0; i < 1500; ++i) {
      const Bytes f = udp4_frame(static_cast<std::uint16_t>(1024 + i), 80,
                                 "payload-" + std::to_string(i));
      ASSERT_TRUE(store.append(SimTime::from_ms(i), BytesView(f)).has_value());
    }
  };
  fill();
  const std::size_t arena_chunks = store.arena().chunk_count();
  const std::size_t arena_capacity = store.arena().capacity();
  const std::size_t row_chunks = store.row_chunk_count();
  ASSERT_GT(row_chunks, 1u);  // 1500 rows cross the 1024-row chunk boundary

  store.reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.arena().frame_count(), 0u);

  // An identical second fill reuses every retained chunk: no churn in the
  // arena or any column, and the rows read back correctly.
  fill();
  EXPECT_EQ(store.arena().chunk_count(), arena_chunks);
  EXPECT_EQ(store.arena().capacity(), arena_capacity);
  EXPECT_EQ(store.row_chunk_count(), row_chunks);
  ASSERT_EQ(store.size(), 1500u);
  EXPECT_EQ(string_of(store.payload(7)), "payload-7");
  EXPECT_EQ(store.src_port(1400), 1024 + 1400);
  EXPECT_EQ(string_of(store.packet(1400).app_payload()), "payload-1400");
}

TEST(CaptureStore, ResetRepublishesArenaOccupancyGauges) {
  CaptureStore store;
  const Bytes f = udp4_frame(1234, 80, "gauge probe");
  ASSERT_TRUE(store.append(SimTime{}, BytesView(f)).has_value());

  auto& registry = telemetry::Registry::global();
  EXPECT_GT(registry.gauge("roomnet_capture_arena_bytes_used").value(), 0);
  EXPECT_GT(registry.gauge("roomnet_capture_arena_chunks").value(), 0);

  store.reset();
  // Occupancy reads zero used but the retained reservation, immediately —
  // not only after the next append.
  EXPECT_EQ(registry.gauge("roomnet_capture_arena_bytes_used").value(), 0);
  EXPECT_EQ(registry.gauge("roomnet_capture_arena_large_chunks").value(), 0);
  EXPECT_EQ(
      static_cast<std::size_t>(
          registry.gauge("roomnet_capture_arena_bytes_reserved").value()),
      store.arena().capacity());
}

}  // namespace
}  // namespace roomnet
