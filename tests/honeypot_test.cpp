// Tests for the protocol honeypots and taint propagation tracking.
#include <gtest/gtest.h>

#include "honeypot/honeypot.hpp"
#include "proto/http.hpp"
#include "proto/json.hpp"
#include "sim/host.hpp"

namespace roomnet {
namespace {

MacAddress mac_n(std::uint64_t n) { return MacAddress::from_u64(0x02a0f0000000ull | n); }

struct HoneyLan {
  EventLoop loop;
  Switch net{loop};
  Router router{net, mac_n(1), Ipv4Address(192, 168, 10, 1)};
  Rng rng{99};
  void settle(double s = 10) { loop.run_until(loop.now() + SimTime::from_seconds(s)); }
};

TEST(Honeypot, MediaRendererAnswersMsearchWithTokens) {
  HoneyLan lan;
  Honeypot pot(lan.net, mac_n(2), HoneypotPersona::kMediaRenderer, lan.rng);
  pot.start();
  lan.settle();

  Host scanner(lan.net, mac_n(3), "scanner");
  scanner.start_dhcp("scanner", "", {});
  lan.settle();

  SsdpEndpoint scanner_ssdp(scanner);
  std::optional<SsdpMessage> response;
  scanner_ssdp.on_message = [&](const PacketView&, const SsdpMessage& m) {
    if (m.kind == SsdpKind::kResponse) response = m;
  };
  scanner_ssdp.msearch("ssdp:all");
  lan.settle();

  ASSERT_TRUE(response.has_value());
  // The USN carries the honeypot's UDN token.
  bool token_in_usn = false;
  for (const auto& token : pot.tokens())
    token_in_usn |= response->usn.find(token.value) != std::string::npos;
  EXPECT_TRUE(token_in_usn);
  // The M-SEARCH was recorded with the scanner's MAC.
  ASSERT_FALSE(pot.interactions().empty());
  EXPECT_FALSE(pot.interactions_from(scanner.mac()).empty());
  EXPECT_EQ(pot.interactions_from(scanner.mac())[0].protocol,
            ProtocolLabel::kSsdp);
}

TEST(Honeypot, ZeroconfSpeakerRecordsQueriesAndEmitsTokens) {
  HoneyLan lan;
  Honeypot pot(lan.net, mac_n(2), HoneypotPersona::kZeroconfSpeaker, lan.rng);
  pot.start();
  lan.settle();

  Host phone(lan.net, mac_n(3), "phone");
  phone.start_dhcp("phone", "", {});
  lan.settle();
  MdnsEndpoint phone_mdns(phone);
  std::string seen_instance;
  phone_mdns.on_message = [&](const PacketView&, const DnsMessage& msg) {
    for (const auto& rec : msg.answers)
      if (const auto ptr = rec.ptr()) seen_instance = ptr->to_string();
  };
  phone_mdns.query("_spotify-connect._tcp.local");
  lan.settle();

  bool tokened = false;
  for (const auto& token : pot.tokens())
    tokened |= seen_instance.find(token.value) != std::string::npos;
  EXPECT_TRUE(tokened);
  EXPECT_FALSE(pot.interactions_from(phone.mac()).empty());
}

TEST(Honeypot, TelnetShellRecordsConnections) {
  HoneyLan lan;
  Honeypot pot(lan.net, mac_n(2), HoneypotPersona::kTelnetShell, lan.rng);
  pot.start();
  lan.settle();

  Host intruder(lan.net, mac_n(3), "intruder");
  intruder.start_dhcp("intruder", "", {});
  lan.settle();
  std::string banner;
  auto& conn = intruder.connect_tcp(pot.host().ip(), 23);
  conn.on_data = [&](TcpConnection& c, BytesView data) {
    if (banner.empty()) {
      banner = string_of(data);
      c.send(bytes_of("root\r\n"));
    }
  };
  lan.settle();
  EXPECT_NE(banner.find("login:"), std::string::npos);
  // Connection + credential input both recorded.
  EXPECT_GE(pot.interactions().size(), 2u);
}

TEST(PropagationTrackerTest, FindsTokensInUploads) {
  HoneyLan lan;
  Honeypot pot(lan.net, mac_n(2), HoneypotPersona::kMediaRenderer, lan.rng);
  pot.start();
  lan.settle();

  PropagationTracker tracker;
  tracker.register_tokens(pot);

  // An app "uploads" a JSON blob embedding the honeypot's friendlyName.
  ASSERT_FALSE(pot.tokens().empty());
  const std::string stolen = pot.tokens()[1].value;  // friendlyName token
  json::Object payload;
  payload.emplace("devices", json::Array{json::Value("Living Room TV " + stolen)});
  const std::string upload = json::Value(std::move(payload)).dump();

  const auto matches =
      tracker.scan(BytesView(bytes_of(upload)), "app:com.example/cloud");
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].token.value, stolen);
  EXPECT_EQ(matches[0].context, "app:com.example/cloud");

  // Clean payloads produce no matches.
  EXPECT_TRUE(
      tracker.scan(BytesView(bytes_of("{\"benign\":true}")), "x").empty());
}

TEST(PropagationTrackerTest, TokensAreUniqueAcrossHoneypots) {
  HoneyLan lan;
  Honeypot a(lan.net, mac_n(2), HoneypotPersona::kIpCamera, lan.rng);
  Honeypot b(lan.net, mac_n(3), HoneypotPersona::kIpCamera, lan.rng);
  a.start();
  b.start();
  lan.settle();
  for (const auto& ta : a.tokens())
    for (const auto& tb : b.tokens()) EXPECT_NE(ta.value, tb.value);
}

TEST(HoneypotIntegration, AppHarvestsTokensAndTrackerCatchesExfiltration) {
  // End-to-end §3.1 honeypot purpose: deploy a honeypot, run a scanning app
  // over the instrumented phone, and prove the honeytoken shows up in the
  // app's cloud upload — the propagation evidence chain.
  HoneyLan lan;
  Honeypot pot(lan.net, mac_n(2), HoneypotPersona::kZeroconfSpeaker, lan.rng);
  pot.start();

  Host phone(lan.net, mac_n(3), "phone");
  phone.start_dhcp("phone", "", {});
  lan.settle();

  // A scanning "app": mDNS meta + specific query, harvest instance names.
  std::vector<std::string> harvested;
  MdnsEndpoint phone_mdns(phone);
  phone_mdns.on_message = [&](const PacketView&, const DnsMessage& msg) {
    for (const auto& rec : msg.answers)
      if (const auto ptr = rec.ptr()) harvested.push_back(ptr->to_string());
  };
  phone_mdns.query("_spotify-connect._tcp.local");
  lan.settle();
  ASSERT_FALSE(harvested.empty());

  // The app uploads its inventory; the tracker must match the token.
  std::string upload = "{\"inventory\":[";
  for (const auto& name : harvested) upload += "\"" + name + "\",";
  upload += "]}";
  PropagationTracker tracker;
  tracker.register_tokens(pot);
  const auto matches =
      tracker.scan(BytesView(bytes_of(upload)), "app->cloud upload");
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].token.field, "instance");
}

}  // namespace
}  // namespace roomnet
