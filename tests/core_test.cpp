// End-to-end pipeline test: one (reduced-scale) run of the full study.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/roomnet.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace roomnet {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineConfig config;
    config.seed = 42;
    config.idle_duration = SimTime::from_minutes(40);
    config.interactions = 120;
    config.app_sample = 40;
    pipeline_ = new Pipeline(config);
    results_ = new PipelineResults(pipeline_->run());
  }
  static void TearDownTestSuite() {
    delete results_;
    delete pipeline_;
    results_ = nullptr;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
  static PipelineResults* results_;
};
Pipeline* PipelineFixture::pipeline_ = nullptr;
PipelineResults* PipelineFixture::results_ = nullptr;

TEST_F(PipelineFixture, CapturesSubstantialLocalTraffic) {
  EXPECT_GT(results_->local_packets, 5000u);
  EXPECT_GT(results_->flows, 100u);
  EXPECT_EQ(results_->population.size(), 93u);
}

TEST_F(PipelineFixture, Rq1ProtocolDiversity) {
  // The paper's Figure 2 shows >20 protocols in passive traffic.
  const auto labels = results_->usage.all_labels();
  EXPECT_GE(labels.size(), 12u);
  // The headline ordering: ARP/DHCP near-universal, mDNS ~44%, SSDP ~1/3.
  const auto pct = [&](ProtocolLabel label) {
    return 100.0 *
           static_cast<double>(
               results_->usage.devices_using(label, results_->population)) /
           93.0;
  };
  EXPECT_GT(pct(ProtocolLabel::kArp), 80);
  EXPECT_GT(pct(ProtocolLabel::kDhcp), 85);
  EXPECT_GT(pct(ProtocolLabel::kArp), pct(ProtocolLabel::kMdns));
  EXPECT_GT(pct(ProtocolLabel::kMdns), pct(ProtocolLabel::kTuyaLp));
}

TEST_F(PipelineFixture, Rq1CommunicationGraphHasVendorClusters) {
  EXPECT_GT(results_->graph.connected_nodes().size(), 10u);
  EXPECT_FALSE(results_->graph.edges.empty());
}

TEST_F(PipelineFixture, Rq2ExposureMatrixPopulated) {
  EXPECT_TRUE(results_->exposure.exposed(ProtocolLabel::kArp, ExposedData::kMac));
  EXPECT_TRUE(
      results_->exposure.exposed(ProtocolLabel::kDhcp, ExposedData::kOsVersion));
  EXPECT_TRUE(
      results_->exposure.exposed(ProtocolLabel::kTuyaLp, ExposedData::kGwId));
}

TEST_F(PipelineFixture, Rq2VulnerabilitiesFound) {
  EXPECT_FALSE(results_->vulnerabilities.empty());
  bool weak_key = false;
  for (const auto& finding : results_->vulnerabilities)
    weak_key |= finding.id == "CVE-2016-2183";
  EXPECT_TRUE(weak_key);
}

TEST_F(PipelineFixture, Rq3AppCampaignAndEntropy) {
  EXPECT_EQ(results_->app_stats.total_apps, 40u);
  EXPECT_FALSE(results_->exfiltration.empty());
  EXPECT_FALSE(results_->fingerprints.rows.empty());
}

TEST_F(PipelineFixture, ClassifierDisagreementIsRealistic) {
  // Appendix C.2: the tools disagree on a noticeable but minor fraction.
  EXPECT_GT(results_->crossval.total, 100u);
  EXPECT_GT(results_->crossval.agreement_rate(), 0.3);
  EXPECT_GT(results_->crossval.disagreement_rate(), 0.0);
  EXPECT_LT(results_->crossval.disagreement_rate(), 0.6);
}

TEST(PipelineDeterminism, SameSeedSameHeadlineNumbers) {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 5;
  config.run_scan = false;
  config.run_crowd = false;
  Pipeline p1(config), p2(config);
  const auto r1 = p1.run();
  const auto r2 = p2.run();
  EXPECT_EQ(r1.local_packets, r2.local_packets);
  EXPECT_EQ(r1.flows, r2.flows);
  EXPECT_EQ(r1.graph.edges.size(), r2.graph.edges.size());
}

TEST(PipelineDeterminism, ByteIdenticalAcrossThreadCounts) {
  // The exec runtime's contract: partial results always merge in index
  // order, so the full result tables — including the parallelized
  // cross-validation, vulnerability audit, and fingerprint analysis — are
  // identical for every worker count, and threads=1 is the historical
  // sequential path.
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  config.run_scan = true;
  config.run_crowd = true;

  const auto run_with = [&](int threads) {
    PipelineConfig c = config;
    c.threads = threads;
    Pipeline pipeline(c);
    return pipeline.run();
  };
  const PipelineResults base = run_with(1);
  EXPECT_FALSE(base.vulnerabilities.empty());
  EXPECT_FALSE(base.fingerprints.rows.empty());
  EXPECT_GT(base.crossval.total, 100u);
  EXPECT_FALSE(base.manifest.stages.empty());
  EXPECT_FALSE(base.manifest.result_digest.empty());

  for (const int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const PipelineResults r = run_with(threads);

    EXPECT_EQ(r.local_packets, base.local_packets);
    EXPECT_EQ(r.flows, base.flows);
    EXPECT_EQ(r.population, base.population);
    EXPECT_EQ(r.usage.by_device, base.usage.by_device);

    ASSERT_EQ(r.graph.edges.size(), base.graph.edges.size());
    for (std::size_t i = 0; i < r.graph.edges.size(); ++i) {
      EXPECT_EQ(r.graph.edges[i].a, base.graph.edges[i].a) << i;
      EXPECT_EQ(r.graph.edges[i].b, base.graph.edges[i].b) << i;
      EXPECT_EQ(r.graph.edges[i].packets, base.graph.edges[i].packets) << i;
    }

    EXPECT_EQ(r.crossval.matrix, base.crossval.matrix);
    EXPECT_EQ(r.crossval.total, base.crossval.total);
    EXPECT_EQ(r.crossval.agreed, base.crossval.agreed);
    EXPECT_EQ(r.crossval.disagreed, base.crossval.disagreed);
    EXPECT_EQ(r.crossval.neither_labeled, base.crossval.neither_labeled);
    EXPECT_EQ(r.crossval.spec_labeled, base.crossval.spec_labeled);
    EXPECT_EQ(r.crossval.deep_labeled, base.crossval.deep_labeled);

    EXPECT_EQ(r.exposure.cells, base.exposure.cells);
    EXPECT_EQ(r.responses.discovery_protocols,
              base.responses.discovery_protocols);
    EXPECT_EQ(r.responses.answered_protocols, base.responses.answered_protocols);
    EXPECT_EQ(r.responses.matches.size(), base.responses.matches.size());

    EXPECT_EQ(r.scan_reports.size(), base.scan_reports.size());
    EXPECT_EQ(r.audits.size(), base.audits.size());
    ASSERT_EQ(r.vulnerabilities.size(), base.vulnerabilities.size());
    for (std::size_t i = 0; i < r.vulnerabilities.size(); ++i) {
      EXPECT_EQ(r.vulnerabilities[i].mac, base.vulnerabilities[i].mac) << i;
      EXPECT_EQ(r.vulnerabilities[i].device, base.vulnerabilities[i].device) << i;
      EXPECT_EQ(r.vulnerabilities[i].severity, base.vulnerabilities[i].severity)
          << i;
      EXPECT_EQ(r.vulnerabilities[i].id, base.vulnerabilities[i].id) << i;
      EXPECT_EQ(r.vulnerabilities[i].title, base.vulnerabilities[i].title) << i;
      EXPECT_EQ(r.vulnerabilities[i].evidence, base.vulnerabilities[i].evidence)
          << i;
    }

    ASSERT_EQ(r.fingerprints.rows.size(), base.fingerprints.rows.size());
    for (std::size_t i = 0; i < r.fingerprints.rows.size(); ++i) {
      const auto& a = r.fingerprints.rows[i];
      const auto& b = base.fingerprints.rows[i];
      EXPECT_EQ(a.types, b.types) << i;
      EXPECT_EQ(a.products, b.products) << i;
      EXPECT_EQ(a.vendors, b.vendors) << i;
      EXPECT_EQ(a.devices, b.devices) << i;
      EXPECT_EQ(a.households, b.households) << i;
      EXPECT_EQ(a.uniquely_identified, b.uniquely_identified) << i;
      // Bit-exact: entropy is computed in the sequential aggregation stage
      // from inputs that are themselves worker-count invariant.
      EXPECT_EQ(a.entropy_bits, b.entropy_bits) << i;
    }

    // The flight-recorder manifest is the machine-checkable form of all the
    // assertions above: byte-identical manifest.json across thread counts.
    EXPECT_EQ(obs::to_json(r.manifest), obs::to_json(base.manifest));
    const obs::ManifestDiff diff = obs::diff_manifests(base.manifest, r.manifest);
    EXPECT_TRUE(diff.equal) << diff.detail;
  }
}

TEST(PipelineDeterminism, ByteIdenticalAcrossThreadCountsWithFaults) {
  // The zero-copy capture path (arena + shared delivery buffers) must not
  // introduce thread-count-dependent behavior even when fault injection
  // perturbs the frame stream: same seed + same fault plan ⇒ byte-identical
  // manifest at every worker count.
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 10;
  config.app_sample = 0;
  config.run_scan = false;
  config.run_crowd = false;
  config.faults.loss = 0.03;
  config.faults.duplicate = 0.02;
  config.faults.truncate = 0.02;
  config.faults.corrupt = 0.01;

  const auto run_with = [&](int threads) {
    PipelineConfig c = config;
    c.threads = threads;
    Pipeline pipeline(c);
    return pipeline.run();
  };
  const PipelineResults base = run_with(1);
  EXPECT_FALSE(base.manifest.stages.empty());
  for (const int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const PipelineResults r = run_with(threads);
    EXPECT_EQ(r.local_packets, base.local_packets);
    EXPECT_EQ(obs::to_json(r.manifest), obs::to_json(base.manifest));
    const obs::ManifestDiff diff = obs::diff_manifests(base.manifest, r.manifest);
    EXPECT_TRUE(diff.equal) << diff.detail;
  }
}

TEST(PipelineDeterminism, AuditNamesFirstDivergentStageAcrossFaultSeeds) {
  // Two runs that differ only in the injected fault stream: the manifests
  // must disagree, and diff_manifests() must attribute the divergence to a
  // named stage rather than a generic "results differ".
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 0;
  config.app_sample = 0;
  config.run_scan = false;
  config.run_crowd = false;
  config.faults.loss = 0.05;

  const auto run_with_fault_seed = [&](const char* seed) {
    EXPECT_EQ(setenv("ROOMNET_FAULT_SEED", seed, /*overwrite=*/1), 0);
    Pipeline pipeline(config);
    const PipelineResults r = pipeline.run();
    unsetenv("ROOMNET_FAULT_SEED");
    return r.manifest;
  };
  const obs::RunManifest a = run_with_fault_seed("0x1111");
  const obs::RunManifest b = run_with_fault_seed("0x2222");
  EXPECT_EQ(a.sim_seed, b.sim_seed);
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_NE(a.fault_seed, b.fault_seed);

  const obs::ManifestDiff diff = obs::diff_manifests(a, b);
  EXPECT_FALSE(diff.equal);
  // The fault-seed mismatch is noted but does not stop the audit: the walk
  // continues to name the first stage the diverging fault stream touched.
  EXPECT_EQ(diff.component, "stage") << diff.detail;
  EXPECT_FALSE(diff.stage.empty());
}

TEST(PipelineDeterminism, StructuredLoggingDoesNotPerturbResults) {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 5;
  config.run_scan = false;
  config.run_crowd = false;
  config.faults.loss = 0.02;  // exercise the fault-path kDebug log sites

  obs::Ledger& ledger = obs::Ledger::global();
  const obs::LogLevel saved = ledger.level();
  ledger.set_level(obs::LogLevel::kOff);
  Pipeline quiet(config);
  const PipelineResults r_quiet = quiet.run();

  ledger.set_level(obs::LogLevel::kDebug);
  Pipeline verbose(config);
  const PipelineResults r_verbose = verbose.run();
  const std::uint64_t recorded = ledger.recorded();
  ledger.set_level(saved);

  // Logging observed plenty...
  EXPECT_GT(recorded, 0u);
  // ...and changed nothing: bit-for-bit identical manifests.
  EXPECT_EQ(obs::to_json(r_quiet.manifest), obs::to_json(r_verbose.manifest));
  EXPECT_TRUE(obs::diff_manifests(r_quiet.manifest, r_verbose.manifest).equal);
  EXPECT_EQ(r_quiet.local_packets, r_verbose.local_packets);
  EXPECT_EQ(r_quiet.flows, r_verbose.flows);
}

TEST(PipelineTelemetry, PopulatesStageMetricsWithoutChangingResults) {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 5;
  config.run_scan = false;
  config.run_crowd = true;

  // Baseline run with telemetry off, then the same config with telemetry on.
  Pipeline plain(config);
  const auto r1 = plain.run();

  const std::filesystem::path out_dir = "telemetry_core_test_out";
  std::filesystem::remove_all(out_dir);
  PipelineConfig instrumented = config;
  instrumented.telemetry_out = out_dir.string();
  Pipeline traced(instrumented);
  const auto r2 = traced.run();
  telemetry::disable();

  // Determinism guard: telemetry must not perturb the study's result tables.
  EXPECT_EQ(r1.local_packets, r2.local_packets);
  EXPECT_EQ(r1.flows, r2.flows);
  EXPECT_EQ(r1.population, r2.population);
  EXPECT_EQ(r1.graph.edges.size(), r2.graph.edges.size());
  EXPECT_EQ(r1.usage.all_labels(), r2.usage.all_labels());
  EXPECT_EQ(r1.crossval.total, r2.crossval.total);
  EXPECT_EQ(r1.app_stats.total_apps, r2.app_stats.total_apps);
  EXPECT_EQ(r1.exfiltration.size(), r2.exfiltration.size());
  EXPECT_EQ(r1.fingerprints.rows.size(), r2.fingerprints.rows.size());

  // Stage metrics are populated for every stage that ran.
  auto& registry = telemetry::Registry::global();
  for (const char* stage :
       {"lab_boot", "idle", "interactions", "classify", "apps", "crowd"}) {
    EXPECT_GE(registry
                  .gauge("roomnet_pipeline_stage_wall_ms", {{"stage", stage}})
                  .value(),
              0)
        << stage;
  }
  EXPECT_EQ(registry
                .gauge("roomnet_pipeline_stage_sim_seconds", {{"stage", "idle"}})
                .value(),
            600);  // exactly the configured 10 virtual minutes
  EXPECT_GT(registry.counter("roomnet_sim_events_fired").value(), 0u);
  EXPECT_GT(registry.counter("roomnet_switch_frames_total").value(), 0u);
  EXPECT_GT(registry.counter("roomnet_switch_bytes_total").value(), 0u);
  EXPECT_GE(registry.counter("roomnet_pipeline_runs_total").value(), 2u);

  // The report landed on disk and the trace carries one span per stage.
  EXPECT_TRUE(std::filesystem::exists(out_dir / "metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(out_dir / "metrics.json"));

  // Run provenance rides along: the deterministic manifest, its volatile
  // resources sidecar, and the JSONL log export (possibly empty).
  EXPECT_TRUE(std::filesystem::exists(out_dir / "resources.json"));
  EXPECT_TRUE(std::filesystem::exists(out_dir / "logs.jsonl"));
  const std::optional<obs::RunManifest> manifest =
      obs::load_manifest((out_dir / "manifest.json").string());
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(obs::diff_manifests(r2.manifest, *manifest).equal);

  ASSERT_TRUE(std::filesystem::exists(out_dir / "trace.json"));
  std::ifstream trace_file(out_dir / "trace.json");
  std::stringstream trace;
  trace << trace_file.rdbuf();
  for (const char* stage :
       {"pipeline", "lab_boot", "idle", "interactions", "classify", "apps",
        "crowd"}) {
    EXPECT_NE(trace.str().find("\"name\":\"" + std::string(stage) + "\""),
              std::string::npos)
        << stage;
  }
  std::filesystem::remove_all(out_dir);
}

}  // namespace
}  // namespace roomnet
