// roomnet::watch tests: NetEvent jsonl round-trip + diff, the alert-rule
// grammar and engine lifecycle (rate / threshold / absence / new-label),
// flight-recorder ring bounds, and the headline determinism claims — the
// merged timeline is byte-identical across thread counts and pipeline modes,
// on clean and faulty runs alike, and a seed change names the first
// divergent event.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stage_names.hpp"
#include "netcore/packet_view.hpp"
#include "watch/events.hpp"
#include "watch/rules.hpp"
#include "watch/watch.hpp"

namespace roomnet::watch {
namespace {

MacAddress mac_n(std::uint64_t n) {
  return MacAddress::from_u64(0x02a000000000ull | n);
}

NetEvent sample_event(std::uint64_t seq) {
  NetEvent event;
  event.seq = seq;
  event.at = SimTime::from_ms(1234);
  event.type = NetEventType::kDnsQuery;
  event.severity = Severity::kNotice;
  event.device = mac_n(7);
  event.device_label = "Test Camera \"A\"";
  event.flow = "udp 192.168.10.5:5353>224.0.0.251:5353";
  event.fields = {{"name", "cam.local"}, {"resolver", "192.168.10.1"}};
  return event;
}

// ------------------------------------------------------------- WatchEvents

TEST(WatchEvents, JsonRoundTripPreservesEveryField) {
  const NetEvent event = sample_event(42);
  const auto parsed = parse_event(to_json(event));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, event);
}

TEST(WatchEvents, JsonlRoundTripAndStableHash) {
  std::vector<NetEvent> events;
  for (std::uint64_t i = 0; i < 5; ++i) events.push_back(sample_event(i));
  const std::string jsonl = events_to_jsonl(events);
  const auto parsed = parse_events_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, events);
  // Hash is a pure function of the serialized bytes.
  EXPECT_EQ(hash_events(*parsed), hash_events(events));
}

TEST(WatchEvents, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_event("not json").has_value());
  EXPECT_FALSE(parse_event("{}").has_value());
  EXPECT_FALSE(parse_event(R"({"seq":0,"t_us":1,"type":"nope",)"
                           R"("severity":"info","device":"02:a0:00:00:00:01",)"
                           R"("label":"x"})")
                   .has_value());
  EXPECT_FALSE(
      parse_events_jsonl("{\"seq\":0}\ngarbage\n").has_value());
}

TEST(WatchEvents, DiffNamesFirstDivergentEvent) {
  std::vector<NetEvent> a, b;
  for (std::uint64_t i = 0; i < 4; ++i) {
    a.push_back(sample_event(i));
    b.push_back(sample_event(i));
  }
  EXPECT_TRUE(diff_events(a, b).equal);
  b[2].device_label = "Imposter";
  const EventDiff diff = diff_events(a, b);
  EXPECT_FALSE(diff.equal);
  EXPECT_EQ(diff.index, 2u);
  EXPECT_NE(diff.detail.find("Imposter"), std::string::npos);
}

TEST(WatchEvents, DiffHandlesPrefixStreams) {
  std::vector<NetEvent> a, b;
  for (std::uint64_t i = 0; i < 3; ++i) a.push_back(sample_event(i));
  b = a;
  b.pop_back();
  const EventDiff diff = diff_events(a, b);
  EXPECT_FALSE(diff.equal);
  EXPECT_EQ(diff.index, 2u);
}

// -------------------------------------------------------------- WatchRules

TEST(WatchRules, DefaultRulesParseClean) {
  const RuleParse parsed = parse_rules(default_rules());
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_GE(parsed.rules.size(), 5u);
}

TEST(WatchRules, ParsesFullGrammar) {
  const RuleParse parsed = parse_rules(
      "# comment line\n"
      "alert scans: rate(event:scan_probe, 30s) > 20 severity critical\n"
      "alert uploads: threshold(flow:upload_ratio_pct) > 90 severity "
      "warning\n"
      "alert offline: threshold(metric:roomnet_faults_frames_offline_total) "
      "> 0 severity notice\n"
      "alert resolvers: new(event:dns_query, resolver) severity warning\n"
      "alert silent: absence(device_activity, 15m) severity info\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.rules.size(), 5u);
  EXPECT_EQ(parsed.rules[0].kind, RuleKind::kRate);
  EXPECT_EQ(parsed.rules[0].window, SimTime::from_seconds(30));
  EXPECT_EQ(parsed.rules[0].threshold, 20);
  EXPECT_EQ(parsed.rules[0].severity, Severity::kCritical);
  EXPECT_EQ(parsed.rules[1].kind, RuleKind::kThreshold);
  EXPECT_EQ(parsed.rules[1].source, "flow:upload_ratio_pct");
  EXPECT_EQ(parsed.rules[2].source,
            "metric:roomnet_faults_frames_offline_total");
  EXPECT_EQ(parsed.rules[3].kind, RuleKind::kNewLabel);
  EXPECT_EQ(parsed.rules[3].field, "resolver");
  EXPECT_EQ(parsed.rules[4].kind, RuleKind::kAbsence);
  EXPECT_EQ(parsed.rules[4].window, SimTime::from_minutes(15));
}

TEST(WatchRules, ErrorsNameTheOffendingLine) {
  EXPECT_NE(parse_rules("alert x: bogus(event:dns_query)\n")
                .error.find("line 1"),
            std::string::npos);
  EXPECT_NE(parse_rules("alert ok: absence(device_activity, 10s) severity "
                        "info\nalert y: rate(event:dns_query, 5s) > 1 "
                        "severity loud\n")
                .error.find("line 2"),
            std::string::npos);
  // Unknown event types are rejected up front, not silently never-matching.
  EXPECT_FALSE(
      parse_rules("alert z: rate(event:warp_core, 5s) > 1 severity info\n")
          .ok());
  // Duplicate rule names would make the summary table ambiguous.
  EXPECT_FALSE(parse_rules("alert a: absence(device_activity, 10s) severity "
                           "info\nalert a: absence(device_activity, 20s) "
                           "severity info\n")
                   .ok());
}

// ------------------------------------------------------------- WatchEngine

struct TransitionLog {
  struct Entry {
    SimTime at;
    std::string rule;
    MacAddress device;
    bool firing;
    std::int64_t value;
  };
  std::vector<Entry> entries;
  RuleEngine::Emit emit() {
    return [this](SimTime at, const RuleEngine::Transition& t) {
      entries.push_back({at, t.rule->name, t.device, t.firing, t.value});
    };
  }
};

NetEvent typed_event(SimTime at, NetEventType type, MacAddress device,
                     std::vector<std::pair<std::string, std::string>> fields =
                         {}) {
  NetEvent event;
  event.at = at;
  event.type = type;
  event.device = device;
  event.fields = std::move(fields);
  return event;
}

TEST(WatchEngine, RateRuleFiresAndResolvesWhenWindowDrains) {
  const RuleParse parsed = parse_rules(
      "alert scans: rate(event:scan_probe, 30s) > 2 severity critical\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  TransitionLog log;
  RuleEngine engine(parsed.rules, SimTime::from_seconds(10), log.emit());
  const MacAddress dev = mac_n(1);
  for (int i = 1; i <= 3; ++i)
    engine.on_event(typed_event(SimTime::from_seconds(i),
                                NetEventType::kScanProbe, dev));
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_TRUE(log.entries[0].firing);
  EXPECT_EQ(log.entries[0].at, SimTime::from_seconds(3));
  EXPECT_EQ(log.entries[0].value, 3);
  // The window drains with sim time; the first tick past expiry resolves.
  engine.advance(SimTime::from_seconds(60));
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_FALSE(log.entries[1].firing);
  const auto summaries = engine.finish(SimTime::from_seconds(61));
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].fired, 1u);
  EXPECT_EQ(summaries[0].resolved, 1u);
  EXPECT_EQ(summaries[0].firing, 0u);
}

TEST(WatchEngine, FlowThresholdIsAPulseResolvedOneTickAfterOffense) {
  const RuleParse parsed = parse_rules(
      "alert uploads: threshold(flow:upload_ratio_pct) > 90 severity "
      "warning\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  TransitionLog log;
  RuleEngine engine(parsed.rules, SimTime::from_seconds(10), log.emit());
  const MacAddress dev = mac_n(2);
  engine.on_flow_signal(SimTime::from_seconds(5), dev, "tcp a>b", 95);
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_TRUE(log.entries[0].firing);
  EXPECT_EQ(log.entries[0].value, 95);
  // Under-threshold flows never fire.
  engine.on_flow_signal(SimTime::from_seconds(6), mac_n(3), "tcp c>d", 50);
  ASSERT_EQ(log.entries.size(), 1u);
  // The first whole tick with no further offense resolves the pulse.
  engine.advance(SimTime::from_seconds(25));
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_FALSE(log.entries[1].firing);
  EXPECT_EQ(log.entries[1].at, SimTime::from_seconds(10));
  EXPECT_EQ(log.entries[1].device, dev);
}

TEST(WatchEngine, AbsenceFiresForSilentDeviceAndResolvesOnActivity) {
  const RuleParse parsed = parse_rules(
      "alert silent: absence(device_activity, 60s) severity notice\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  TransitionLog log;
  RuleEngine engine(parsed.rules, SimTime::from_seconds(10), log.emit());
  const MacAddress quiet = mac_n(4), chatty = mac_n(5);
  engine.register_device(quiet);  // silent since t=0
  engine.on_activity(SimTime::from_seconds(55), chatty);
  engine.advance(SimTime::from_seconds(65));
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_TRUE(log.entries[0].firing);
  EXPECT_EQ(log.entries[0].device, quiet);
  // The device coming back resolves immediately, not at the next tick.
  engine.on_activity(SimTime::from_seconds(67), quiet);
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_FALSE(log.entries[1].firing);
  EXPECT_EQ(log.entries[1].at, SimTime::from_seconds(67));
  EXPECT_EQ(log.entries[1].device, quiet);
}

TEST(WatchEngine, NewLabelFiresOncePerValueAndHonorsSeeds) {
  const RuleParse parsed = parse_rules(
      "alert resolvers: new(event:dns_query, resolver) severity warning\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  TransitionLog log;
  RuleEngine engine(parsed.rules, SimTime::from_seconds(10), log.emit());
  engine.seed_label("resolver", "192.168.10.1");
  const MacAddress dev = mac_n(6);
  // The seeded baseline value never fires.
  engine.on_event(typed_event(SimTime::from_seconds(1),
                              NetEventType::kDnsQuery, dev,
                              {{"resolver", "192.168.10.1"}}));
  EXPECT_TRUE(log.entries.empty());
  engine.on_event(typed_event(SimTime::from_seconds(2),
                              NetEventType::kDnsQuery, dev,
                              {{"resolver", "10.9.9.9"}}));
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_TRUE(log.entries[0].firing);
  // A repeat of the now-known value is not a second alert.
  engine.on_event(typed_event(SimTime::from_seconds(3),
                              NetEventType::kDnsQuery, dev,
                              {{"resolver", "10.9.9.9"}}));
  ASSERT_EQ(log.entries.size(), 1u);
  // Pulse semantics: resolved at the first quiet tick.
  engine.advance(SimTime::from_seconds(15));
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_FALSE(log.entries[1].firing);
}

TEST(WatchEngine, MetricThresholdAttributesToNetworkPseudoDevice) {
  const RuleParse parsed = parse_rules(
      "alert offline: threshold(metric:roomnet_test_metric) > 5 severity "
      "warning\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  TransitionLog log;
  RuleEngine engine(parsed.rules, SimTime::from_seconds(10), log.emit());
  std::int64_t value = 0;
  engine.set_metric_reader(
      [&](const std::string& name) -> std::optional<std::int64_t> {
        return name == "roomnet_test_metric" ? std::optional(value)
                                             : std::nullopt;
      });
  engine.advance(SimTime::from_seconds(15));
  EXPECT_TRUE(log.entries.empty());  // 0 <= 5
  value = 9;
  engine.advance(SimTime::from_seconds(25));
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_TRUE(log.entries[0].firing);
  EXPECT_EQ(log.entries[0].device, MacAddress{});  // network-wide
  EXPECT_EQ(log.entries[0].value, 9);
  value = 2;
  engine.advance(SimTime::from_seconds(35));
  ASSERT_EQ(log.entries.size(), 2u);
  EXPECT_FALSE(log.entries[1].firing);
}

// --------------------------------------------------------------- WatchRing

Packet syn_packet(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src,
                  Ipv4Address dst, std::uint16_t dport) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.payload = Bytes(64);
  Ipv4Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = 6;
  p.ipv4 = ip;
  TcpSegment t;
  t.src_port = port(40000);
  t.dst_port = port(dport);
  t.flags.syn = true;
  p.tcp = t;
  return p;
}

TEST(WatchRing, BoundedRingDropsOldestAndCountsDrops) {
  WatchConfig config;
  config.ring_capacity = 4;
  Watcher watcher(config);
  EXPECT_EQ(watcher.rule_error(), "");
  const MacAddress scanner = mac_n(1), victim = mac_n(2);
  const Ipv4Address src(192, 168, 10, 5), dst(192, 168, 10, 6);
  // 10 distinct (ip, port) SYNs: one new_peer + 10 scan_probe events, all
  // owned by the scanner's ring.
  for (std::uint16_t i = 0; i < 10; ++i) {
    const Packet p = syn_packet(scanner, victim, src, dst,
                                static_cast<std::uint16_t>(8000 + i));
    watcher.on_packet(SimTime::from_ms(i), as_view(p));
  }
  const WatchReport report = watcher.finish();
  EXPECT_EQ(report.events_emitted, 11u);
  EXPECT_EQ(report.events_dropped, 7u);
  ASSERT_EQ(report.events.size(), 4u);
  // Survivors are the newest four, still in seq order.
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    EXPECT_EQ(report.events[i].seq, 7u + i);
    EXPECT_EQ(report.events[i].type, NetEventType::kScanProbe);
  }
  // A repeated probe of a known (ip, port) is not a new event.
  EXPECT_EQ(report.packets_seen, 10u);
}

TEST(WatchRing, BrokenRuleConfigIsReportedNotFatal) {
  WatchConfig config;
  config.rules = "alert broken: rate(event:warp_core, 5s) > 1 severity info\n";
  Watcher watcher(config);
  EXPECT_NE(watcher.rule_error().find("line 1"), std::string::npos);
  const WatchReport report = watcher.finish();
  EXPECT_TRUE(report.alerts.empty());  // engine runs with no rules
}

// ------------------------------------------------------- WatchDeterminism

PipelineConfig small_config() {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(10);
  config.interactions = 20;
  config.app_sample = 0;
  config.run_scan = true;
  config.run_crowd = false;
  return config;
}

TEST(WatchDeterminism, TimelineByteIdenticalAcrossThreadsAndModes) {
  const PipelineConfig config = small_config();
  Pipeline base_pipeline(config);
  const PipelineResults base = base_pipeline.run();
  ASSERT_FALSE(base.watch.events.empty());
  const std::string base_jsonl = events_to_jsonl(base.watch.events);

  // The manifest records the timeline as its own stage, hash matching.
  ASSERT_FALSE(base.manifest.stages.empty());
  bool found = false;
  for (const obs::StageRecord& stage : base.manifest.stages) {
    if (stage.name != stages::kWatch) continue;
    found = true;
    EXPECT_EQ(stage.sha256, hash_events(base.watch.events));
  }
  EXPECT_TRUE(found);

  for (const int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PipelineConfig c = config;
    c.threads = threads;
    c.mode = threads == 2 ? PipelineMode::kStreaming : PipelineMode::kBatch;
    Pipeline pipeline(c);
    const PipelineResults results = pipeline.run();
    EXPECT_EQ(events_to_jsonl(results.watch.events), base_jsonl);
    EXPECT_EQ(results.watch.alerts, base.watch.alerts);
    EXPECT_EQ(results.watch.events_emitted, base.watch.events_emitted);
    EXPECT_EQ(results.watch.events_dropped, base.watch.events_dropped);
  }
}

TEST(WatchDeterminism, FaultyRunIsDeterministicAndSurfacesFaultEvents) {
  PipelineConfig config = small_config();
  config.run_scan = false;
  config.faults.loss = 0.02;
  config.faults.churn = 0.3;

  Pipeline base_pipeline(config);
  const PipelineResults base = base_pipeline.run();
  std::size_t faults = 0, churns = 0;
  for (const NetEvent& event : base.watch.events) {
    faults += event.type == NetEventType::kFault;
    churns += event.type == NetEventType::kChurn;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(churns, 0u);
  // Churned frames push the offline-frames counter over the default rule's
  // threshold: the metric-sourced alert fires.
  bool offline_fired = false;
  for (const AlertRuleSummary& rule : base.watch.alerts)
    if (rule.name == "offline_frames") offline_fired = rule.fired > 0;
  EXPECT_TRUE(offline_fired);

  PipelineConfig c = config;
  c.threads = 4;
  Pipeline pipeline(c);
  const PipelineResults results = pipeline.run();
  EXPECT_TRUE(diff_events(base.watch.events, results.watch.events).equal);
  EXPECT_EQ(results.watch.alerts, base.watch.alerts);
}

TEST(WatchDeterminism, SeedChangeNamesFirstDivergentEvent) {
  PipelineConfig config = small_config();
  config.idle_duration = SimTime::from_minutes(5);
  config.interactions = 10;
  config.run_scan = false;
  Pipeline a_pipeline(config);
  const PipelineResults a = a_pipeline.run();
  config.seed = 43;
  Pipeline b_pipeline(config);
  const PipelineResults b = b_pipeline.run();
  const EventDiff diff = diff_events(a.watch.events, b.watch.events);
  EXPECT_FALSE(diff.equal);
  EXPECT_FALSE(diff.detail.empty());
}

TEST(WatchDeterminism, DisabledWatchOmitsStageAndArtifacts) {
  PipelineConfig config = small_config();
  config.idle_duration = SimTime::from_minutes(5);
  config.interactions = 5;
  config.run_scan = false;
  config.watch.enabled = false;
  const std::string dir = testing::TempDir() + "/roomnet_watch_disabled";
  std::filesystem::remove_all(dir);
  config.telemetry_out = dir;
  Pipeline pipeline(config);
  const PipelineResults results = pipeline.run();
  EXPECT_TRUE(results.watch.events.empty());
  EXPECT_EQ(results.watch.events_emitted, 0u);
  for (const obs::StageRecord& stage : results.manifest.stages)
    EXPECT_NE(stage.name, stages::kWatch);
  EXPECT_FALSE(std::filesystem::exists(dir + "/events.jsonl"));
}

TEST(WatchDeterminism, EventsJsonlArtifactRoundTripsThroughLoader) {
  PipelineConfig config = small_config();
  config.idle_duration = SimTime::from_minutes(5);
  config.interactions = 5;
  config.run_scan = false;
  const std::string dir = testing::TempDir() + "/roomnet_watch_artifact";
  std::filesystem::remove_all(dir);
  config.telemetry_out = dir;
  Pipeline pipeline(config);
  const PipelineResults results = pipeline.run();
  const auto loaded = load_events(dir + "/events.jsonl");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, results.watch.events);
  EXPECT_EQ(hash_events(*loaded), hash_events(results.watch.events));
}

}  // namespace
}  // namespace roomnet::watch
