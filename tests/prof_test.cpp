// roomnet::prof tests: counter substrate, rusage sampling, the per-stage
// profiler, perf.json round-trips, the regression differ, folded-stack
// export, and the pipeline-level determinism contract (perf.json's
// deterministic core is identical across thread counts).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "netcore/frame_store.hpp"
#include "prof/counters.hpp"
#include "prof/folded.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"
#include "prof/rusage.hpp"
#include "proto/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace roomnet {
namespace {

TEST(ResourceSampleTest, SamplesAreSane) {
  const prof::ResourceSample a = prof::ResourceSample::now();
  // Burn a little CPU so the second sample can only move forward.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<std::uint64_t>(i);
  const prof::ResourceSample b = prof::ResourceSample::now();

  EXPECT_GE(b.wall_us, a.wall_us);
  EXPECT_GE(b.user_us, a.user_us);
  EXPECT_GE(b.sys_us, a.sys_us);
  // rss_kb (statm) and peak_rss_kb (ru_maxrss) come from different kernel
  // accounting and are not mutually ordered — only sanity-check each alone.
  EXPECT_GT(a.rss_kb, 0);
  EXPECT_GT(a.peak_rss_kb, 0);
  EXPECT_GE(prof::page_size_bytes(), 4096);

  const prof::ResourceDelta d = prof::delta(a, b);
  EXPECT_GE(d.wall_us, 0);
  EXPECT_EQ(d.rss_kb, b.rss_kb);
}

TEST(CountersTest, FrameStoreArenaHooksCountChunks) {
  const prof::AllocSnapshot before = prof::snapshot_alloc_counters();
  const std::uint64_t tl_before = prof::t_alloc_counters.arena_bytes;

  FrameStore store(1024);
  std::vector<std::uint8_t> frame(400, 0xab);
  // Three 400B frames into 1KiB chunks: frames 1+2 share the first chunk,
  // frame 3 opens the second.
  for (int i = 0; i < 3; ++i)
    store.append(BytesView(frame.data(), frame.size()));
  std::vector<std::uint8_t> big(5000, 0xcd);
  store.append(BytesView(big.data(), big.size()));  // dedicated large chunk

  const prof::AllocSnapshot after = prof::snapshot_alloc_counters();
  EXPECT_EQ(after.arena_allocs - before.arena_allocs, 3u);
  EXPECT_EQ(after.arena_bytes - before.arena_bytes, 1024u + 1024u + 5000u);
  EXPECT_EQ(prof::t_alloc_counters.arena_bytes - tl_before,
            1024u + 1024u + 5000u);
  EXPECT_EQ(store.large_chunk_count(), 1u);
}

TEST(CountersTest, HeapCountersMatchBuildConfiguration) {
  const prof::AllocSnapshot before = prof::snapshot_alloc_counters();
  auto* block = new std::uint8_t[4096];
  // Escape the pointer so the compiler cannot elide the new/delete pair
  // (C++14 allocation elision would otherwise skip the hooks entirely).
  asm volatile("" : : "g"(block) : "memory");
  const prof::AllocSnapshot mid = prof::snapshot_alloc_counters();
  delete[] block;
  const prof::AllocSnapshot after = prof::snapshot_alloc_counters();

  if (prof::heap_hooks_active()) {
    EXPECT_GE(mid.heap_allocs - before.heap_allocs, 1u);
    EXPECT_GE(mid.heap_bytes - before.heap_bytes, 4096u);
    EXPECT_GE(after.heap_frees - mid.heap_frees, 1u);
  } else {
    EXPECT_EQ(mid.heap_allocs, before.heap_allocs);
    EXPECT_EQ(after.heap_bytes, before.heap_bytes);
  }
}

prof::ProfReport make_report() {
  prof::ProfReport report;
  report.compiler = "test-cc 1.0";
  report.profile_heap = false;
  report.threads = 2;
  report.hardware_threads = 8;
  report.page_size = 4096;
  const auto stage = [](const char* name, std::int64_t wall,
                        std::uint64_t arena_bytes) {
    prof::StageProfile s;
    s.name = name;
    s.wall_us = wall;
    s.user_us = wall / 2;
    s.sys_us = wall / 10;
    s.minor_faults = 100;
    s.major_faults = 1;
    s.rss_delta_kb = 256;
    s.rss_kb = 100 * 1024;
    s.peak_rss_kb = 120 * 1024;
    s.arena_allocs = 2000;
    s.arena_bytes = arena_bytes;
    s.pool_tasks = 7;
    s.heap_allocs = 0;
    s.heap_bytes = 0;
    s.heap_peak_live_bytes = 1 << 20;
    return s;
  };
  report.stages.push_back(stage("lab_boot", 50000, 8 << 20));
  report.stages.push_back(stage("idle", 900000, 16 << 20));
  report.stages.push_back(stage("classify", 700000, 8 << 20));
  report.totals = stage("total", 1650000, 32 << 20);
  return report;
}

TEST(ReportTest, JsonRoundTripIsLossless) {
  const prof::ProfReport report = make_report();
  const std::string text = prof::to_json(report);
  const auto parsed = prof::parse_report(text);
  ASSERT_TRUE(parsed.has_value());
  // Canonical serialization: parse(to_json(x)) re-serializes byte-identical.
  EXPECT_EQ(prof::to_json(*parsed), text);
  EXPECT_EQ(parsed->compiler, "test-cc 1.0");
  EXPECT_EQ(parsed->threads, 2);
  ASSERT_EQ(parsed->stages.size(), 3u);
  EXPECT_EQ(parsed->stages[1].name, "idle");
  EXPECT_EQ(parsed->stages[1].wall_us, 900000);
  EXPECT_EQ(parsed->stages[1].arena_bytes, 16u << 20);
  EXPECT_EQ(parsed->totals.name, "total");

  EXPECT_FALSE(prof::parse_report("not json").has_value());
  EXPECT_FALSE(prof::parse_report("{\"schema\": 1}").has_value());
}

TEST(ReportTest, LoadReportReadsFile) {
  const std::filesystem::path path = "prof_test_report.json";
  {
    std::ofstream out(path);
    out << prof::to_json(make_report());
  }
  const auto loaded = prof::load_report(path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->stages.size(), 3u);
  std::filesystem::remove(path);
  EXPECT_FALSE(prof::load_report(path.string()).has_value());
}

TEST(ReportTest, FingerprintCoversOnlyDeterministicFields) {
  const prof::ProfReport a = make_report();
  prof::ProfReport b = make_report();
  // Host-dependent noise: not part of the fingerprint.
  b.stages[0].wall_us *= 3;
  b.stages[1].peak_rss_kb += 4096;
  b.stages[2].heap_allocs = 12345;
  b.stages[2].pool_tasks = 99;
  b.hardware_threads = 2;
  EXPECT_EQ(prof::deterministic_fingerprint(a),
            prof::deterministic_fingerprint(b));

  // The deterministic core: stage names and arena counters.
  b.stages[1].arena_bytes += 1;
  EXPECT_NE(prof::deterministic_fingerprint(a),
            prof::deterministic_fingerprint(b));
}

TEST(DiffTest, IdenticalReportsPass) {
  const prof::ProfReport report = make_report();
  const prof::ProfDiff diff = prof::diff_reports(report, report);
  EXPECT_TRUE(diff.ok);
  EXPECT_GT(diff.compared, 0);
  EXPECT_FALSE(diff.lines.empty());
}

TEST(DiffTest, NamesFirstRegressingStage) {
  const prof::ProfReport baseline = make_report();
  prof::ProfReport current = make_report();
  // Stage 1 ("idle") doubles its arena bytes; stage 2 ("classify") also
  // regresses on wall time. The differ must name the FIRST one.
  current.stages[1].arena_bytes *= 2;
  current.stages[2].wall_us *= 2;
  const prof::ProfDiff diff = prof::diff_reports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.stage, "idle");
  EXPECT_EQ(diff.metric, "arena_bytes");
  EXPECT_NEAR(diff.ratio, 1.0, 1e-9);
  EXPECT_NE(diff.detail.find("idle"), std::string::npos);
}

TEST(DiffTest, SmallRegressionsUnderThresholdPass) {
  const prof::ProfReport baseline = make_report();
  prof::ProfReport current = make_report();
  current.stages[1].arena_bytes += current.stages[1].arena_bytes / 20;  // +5%
  current.stages[1].wall_us += current.stages[1].wall_us / 10;         // +10%
  EXPECT_TRUE(prof::diff_reports(current, baseline).ok);
}

TEST(DiffTest, HardwareMismatchSkipsTimeAndRssGates) {
  const prof::ProfReport baseline = make_report();
  prof::ProfReport current = make_report();
  current.hardware_threads = baseline.hardware_threads + 8;
  current.stages[1].wall_us *= 10;       // would trip the time gate
  current.stages[1].peak_rss_kb *= 10;   // would trip the RSS gate
  const prof::ProfDiff diff = prof::diff_reports(current, baseline);
  EXPECT_TRUE(diff.ok);
  ASSERT_FALSE(diff.lines.empty());
  EXPECT_NE(diff.lines[0].find("SKIP"), std::string::npos);

  // Arena gates still fire across hardware: they are deterministic.
  current.stages[0].arena_bytes *= 2;
  const prof::ProfDiff diff2 = prof::diff_reports(current, baseline);
  EXPECT_FALSE(diff2.ok);
  EXPECT_EQ(diff2.stage, "lab_boot");
  EXPECT_EQ(diff2.metric, "arena_bytes");
}

TEST(DiffTest, StageListMismatchFails) {
  const prof::ProfReport baseline = make_report();
  prof::ProfReport current = make_report();
  current.stages.pop_back();
  const prof::ProfDiff diff = prof::diff_reports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.metric, "stage_list");
}

TEST(ProfilerTest, AttributesArenaAllocsToTheOpenStage) {
  prof::Profiler profiler;
  profiler.begin_run(1);
  {
    prof::StageScope stage("alloc_stage", profiler);
    prof::note_arena_alloc(4096);
    prof::note_arena_alloc(4096);
  }
  {
    prof::StageScope stage("quiet_stage", profiler);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  const prof::ProfReport report = profiler.finish();

  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].name, "alloc_stage");
  EXPECT_EQ(report.stages[0].arena_allocs, 2u);
  EXPECT_EQ(report.stages[0].arena_bytes, 8192u);
  EXPECT_EQ(report.stages[1].name, "quiet_stage");
  EXPECT_EQ(report.stages[1].arena_allocs, 0u);
  for (const prof::StageProfile& s : report.stages) {
    EXPECT_GE(s.wall_us, 0);
    EXPECT_GT(s.rss_kb, 0) << s.name;
    EXPECT_GT(s.peak_rss_kb, 0) << s.name;
  }
  EXPECT_EQ(report.totals.name, "total");
  EXPECT_EQ(report.totals.arena_allocs, 2u);
  EXPECT_EQ(report.threads, 1);
  EXPECT_GT(report.hardware_threads, 0);
  EXPECT_EQ(report.profile_heap, prof::heap_hooks_active());
  EXPECT_FALSE(report.compiler.empty());

  // The profiler is reusable: a new run starts from a clean slate.
  profiler.begin_run(2);
  const prof::ProfReport empty = profiler.finish();
  EXPECT_TRUE(empty.stages.empty());
  EXPECT_EQ(empty.threads, 2);
}

TEST(FoldedTest, ReconstructsNestingAndSelfWeights) {
  auto& tracer = telemetry::Tracer::global();
  tracer.enable(1024);
  // Two spans on this thread: child [10,30) nested inside root [0,100).
  // Recorded directly (not via ScopedSpan) so the intervals are exact.
  tracer.record_complete("root", "test", 0, 100, SimTime{}, SimTime{},
                         /*alloc_count=*/0, /*alloc_bytes=*/0,
                         /*arena_bytes=*/1000);
  tracer.record_complete("child", "test", 10, 20, SimTime{}, SimTime{},
                         /*alloc_count=*/0, /*alloc_bytes=*/0,
                         /*arena_bytes=*/300);

  const std::string wall =
      prof::folded_stacks(tracer, prof::FoldedWeight::kWallMicros);
  // Self wall time: root owns 100 - 20 = 80, the child keeps its 20.
  EXPECT_NE(wall.find(";root 80\n"), std::string::npos) << wall;
  EXPECT_NE(wall.find(";root;child 20\n"), std::string::npos) << wall;
  // Every line is "frame(;frame)* <weight>".
  std::istringstream lines(wall);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string weight = line.substr(space + 1);
    EXPECT_FALSE(weight.empty()) << line;
    EXPECT_EQ(weight.find_first_not_of("0123456789"), std::string::npos)
        << line;
  }

  if (!prof::heap_hooks_active()) {
    // Alloc weighting falls back to the arena counters when the heap hooks
    // are off; children subtract from parents the same way.
    const std::string alloc =
        prof::folded_stacks(tracer, prof::FoldedWeight::kAllocBytes);
    EXPECT_NE(alloc.find(";root 700\n"), std::string::npos) << alloc;
    EXPECT_NE(alloc.find(";root;child 300\n"), std::string::npos) << alloc;
  }

  // Deterministic: folding the same snapshot twice is byte-identical.
  EXPECT_EQ(wall, prof::folded_stacks(tracer, prof::FoldedWeight::kWallMicros));
  tracer.disable();
}

TEST(FoldedTest, SanitizesSeparatorsInSpanNames) {
  auto& tracer = telemetry::Tracer::global();
  tracer.enable(64);
  tracer.record_complete("bad;name with space", "test", 0, 50, SimTime{},
                         SimTime{});
  const std::string wall =
      prof::folded_stacks(tracer, prof::FoldedWeight::kWallMicros);
  EXPECT_NE(wall.find("bad_name_with_space 50\n"), std::string::npos) << wall;
  tracer.disable();
}

TEST(ProfPipelineTest, PerfReportIsDeterministicAcrossThreadCounts) {
  PipelineConfig config;
  config.idle_duration = SimTime::from_minutes(5);
  config.interactions = 10;
  config.app_sample = 0;
  config.run_scan = false;
  config.run_crowd = false;

  const std::filesystem::path dir1 = "prof_pipeline_t1";
  const std::filesystem::path dir2 = "prof_pipeline_t2";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);

  config.threads = 1;
  config.telemetry_out = dir1.string();
  Pipeline p1(config);
  const PipelineResults r1 = p1.run();

  config.threads = 2;
  config.telemetry_out = dir2.string();
  Pipeline p2(config);
  const PipelineResults r2 = p2.run();
  telemetry::disable();

  // The deterministic core (stage set + arena counters) must be
  // byte-identical across thread counts — the perf twin of the manifest's
  // determinism contract.
  EXPECT_EQ(prof::deterministic_fingerprint(r1.profile),
            prof::deterministic_fingerprint(r2.profile));
  EXPECT_EQ(r1.profile.threads, 1);
  EXPECT_EQ(r2.profile.threads, 2);

  // perf.json names exactly the stages the manifest hashes, in order.
  ASSERT_EQ(r1.profile.stages.size(), r1.manifest.stages.size());
  for (std::size_t i = 0; i < r1.profile.stages.size(); ++i)
    EXPECT_EQ(r1.profile.stages[i].name, r1.manifest.stages[i].name);

  // The capture stages actually moved the arena counters.
  std::uint64_t total_arena = 0;
  for (const prof::StageProfile& s : r1.profile.stages)
    total_arena += s.arena_bytes;
  EXPECT_GT(total_arena, 0u);
  EXPECT_EQ(r1.profile.totals.arena_bytes, total_arena);

  // perf.json landed next to manifest.json and round-trips.
  const auto on_disk = prof::load_report((dir1 / "perf.json").string());
  ASSERT_TRUE(on_disk.has_value());
  EXPECT_EQ(prof::to_json(*on_disk), prof::to_json(r1.profile));

  // trace.json parses as strict JSON and carries the alloc attribution keys.
  std::ifstream trace_file(dir1 / "trace.json");
  ASSERT_TRUE(trace_file.is_open());
  std::stringstream trace;
  trace << trace_file.rdbuf();
  const auto doc = json::parse(trace.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(trace.str().find("\"alloc_bytes\""), std::string::npos);

  // The folded exports exist and the wall-weighted one names the stages.
  for (const char* name : {"trace.folded", "alloc.folded"})
    EXPECT_TRUE(std::filesystem::exists(dir1 / name)) << name;
  std::ifstream folded_file(dir1 / "trace.folded");
  std::stringstream folded;
  folded << folded_file.rdbuf();
  EXPECT_NE(folded.str().find(";pipeline"), std::string::npos);
  EXPECT_NE(folded.str().find("idle"), std::string::npos);

  // Satellite telemetry: arena occupancy gauges and per-stage prof gauges
  // were published during the run.
  auto& registry = telemetry::Registry::global();
  EXPECT_GT(registry.gauge("roomnet_capture_arena_bytes_used").value(), 0);
  EXPECT_GT(registry.gauge("roomnet_capture_arena_chunks").value(), 0);
  EXPECT_GE(registry.gauge("roomnet_capture_arena_bytes_reserved").value(),
            registry.gauge("roomnet_capture_arena_bytes_used").value());
  EXPECT_GT(registry
                .gauge("roomnet_prof_stage_wall_us", {{"stage", "idle"}})
                .value(),
            0);
  EXPECT_GT(registry
                .gauge("roomnet_prof_stage_arena_bytes", {{"stage", "idle"}})
                .value(),
            0);

  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);
}

}  // namespace
}  // namespace roomnet
